//! SPEC-like kernels: `605.mcf`, `620.omnetpp`, `623.xalancbmk`,
//! `631.deepsjeng`, `641.leela`, `648.exchange2`, `657.xz_{1,2}`.

use crate::{emit_output, epilogue, prologue, Suite, Workload};
use helios_isa::{Asm, Reg};
use helios_prng::{Rng, SeedableRng, StdRng};
use helios_prng::SliceRandom;

/// Pointer-chasing arc walk (mcf's network simplex inner loop): a ~1 MiB
/// footprint of 16-byte `{cost, next}` arcs visited in a random permutation
/// — cache-hostile, dependent loads, little fusion opportunity and noisy
/// distances (the paper's one IPC-regression case).
pub fn mcf() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xc0f);
    let n = 1usize << 16; // 65 536 arcs × 16 B = 1 MiB
    let steps = 120_000usize;
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(&mut rng);
    // next[i] = perm successor (single cycle through all arcs).
    let mut next = vec![0usize; n];
    for i in 0..n {
        next[perm[i]] = perm[(i + 1) % n];
    }
    let costs: Vec<u64> = (0..n).map(|_| rng.gen_range(1..1000u64)).collect();

    let reference = {
        let mut acc = 0u64;
        let mut cur = perm[0];
        for _ in 0..steps {
            acc = acc.wrapping_add(costs[cur]);
            cur = next[cur];
        }
        acc
    };

    let mut a = Asm::new();
    let base = a.zeros(0, 64);
    let mut words = Vec::with_capacity(n * 2);
    for i in 0..n {
        words.push(costs[i]);
        words.push(base + (next[i] as u64) * 16);
    }
    let actual = a.words64(&words);
    assert_eq!(actual, base);

    a.li(Reg::S0, (base + perm[0] as u64 * 16) as i64);
    a.li(Reg::S1, steps as i64);
    a.li(Reg::S2, 0);
    let top = a.here();
    a.ld(Reg::T0, 0, Reg::S0); // cost
    a.ld(Reg::S0, 8, Reg::S0); // next (dependent load)
    a.add(Reg::S2, Reg::S2, Reg::T0);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "605.mcf",
        suite: Suite::SpecLike,
        program: a.assemble().expect("mcf assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}

/// Discrete-event queue (omnetpp): a binary min-heap of 16-byte
/// `{time, id}` event records. Pop-min then push a derived event; sift
/// operations load/store whole records (pair idioms) with unpredictable
/// comparisons.
pub fn omnetpp() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x0e7);
    let initial = 256usize;
    let ops = 12_000usize;
    let seeds: Vec<u64> = (0..initial).map(|_| rng.gen_range(1..1_000_000u64)).collect();
    let deltas: Vec<u64> = (0..64).map(|_| rng.gen_range(1..5_000u64)).collect();

    let reference = {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<u64>> = seeds.iter().map(|&t| Reverse(t)).collect();
        let mut acc = 0u64;
        for i in 0..ops {
            let Reverse(t) = heap.pop().unwrap();
            acc = acc.wrapping_add(t);
            heap.push(Reverse(t + deltas[i & 63]));
        }
        acc
    };

    let mut a = Asm::new();
    // Heap storage: 1-indexed records of {time, id}; id unused by checksum
    // but loaded/stored to keep record semantics.
    let mut init_words = vec![0u64; 2]; // slot 0 unused
    let mut heap_vec: Vec<u64> = Vec::new();
    for &t in &seeds {
        heap_vec.push(t);
        // standard push into vec-heap (build in Rust for the initial state)
        let mut i = heap_vec.len() - 1;
        while i > 0 {
            let p = (i - 1) / 2;
            if heap_vec[p] <= heap_vec[i] {
                break;
            }
            heap_vec.swap(p, i);
            i = p;
        }
    }
    for (k, &t) in heap_vec.iter().enumerate() {
        init_words.push(t);
        init_words.push(k as u64);
    }
    let heap_addr = a.words64(&init_words);
    let deltas_addr = a.words64(&deltas);

    // Registers: S0 heap base (1-indexed records at base+16*i), S1 size,
    // S2 acc, S3 op counter, S4 deltas base.
    a.la(Reg::S0, heap_addr);
    a.li(Reg::S1, initial as i64);
    a.li(Reg::S2, 0);
    a.li(Reg::S3, 0);
    a.la(Reg::S4, deltas_addr);
    let top = a.here();
    // --- pop min: root at index 1 ---
    a.ld(Reg::A2, 16, Reg::S0); // min time
    a.add(Reg::S2, Reg::S2, Reg::A2);
    // new event time = t + deltas[i & 63]
    a.andi(Reg::T0, Reg::S3, 63);
    a.slli(Reg::T0, Reg::T0, 3);
    a.addi(Reg::S3, Reg::S3, 0); // scheduling gap
    a.add(Reg::T0, Reg::S4, Reg::T0);
    a.ld(Reg::T0, 0, Reg::T0);
    a.add(Reg::A3, Reg::A2, Reg::T0); // replacement key
    // Replace root with the new event and sift down (classic replace-top).
    a.sd(Reg::A3, 16, Reg::S0);
    a.sd(Reg::S3, 24, Reg::S0); // id := op index
    a.li(Reg::T0, 1); // i
    let sift = a.here();
    let sift_done = a.new_label();
    // l = 2i, r = 2i+1
    a.slli(Reg::T1, Reg::T0, 1);
    a.bltu(Reg::S1, Reg::T1, sift_done); // l > size?
    // smallest child: load both child records (adjacent = same line often)
    a.slli(Reg::T2, Reg::T1, 4);
    a.add(Reg::T2, Reg::S0, Reg::T2); // &heap[l]
    a.ld(Reg::T3, 0, Reg::T2); // time[l]
    a.mv(Reg::T4, Reg::T1); // child index
    let no_right = a.new_label();
    a.beq(Reg::T1, Reg::S1, no_right);
    a.ld(Reg::T5, 16, Reg::T2); // time[r] (same-line pair)
    a.bgeu(Reg::T5, Reg::T3, no_right);
    a.mv(Reg::T3, Reg::T5);
    a.addi(Reg::T4, Reg::T1, 1);
    a.bind(no_right);
    // if child time >= parent time, done
    a.slli(Reg::T5, Reg::T0, 4);
    a.add(Reg::T5, Reg::S0, Reg::T5); // &heap[i]
    a.ld(Reg::T6, 0, Reg::T5);
    a.bgeu(Reg::T3, Reg::T6, sift_done);
    // swap records i <-> child
    a.slli(Reg::A4, Reg::T4, 4);
    a.add(Reg::A4, Reg::S0, Reg::A4); // &heap[child]
    a.ld(Reg::A5, 0, Reg::A4); // load pair
    a.ld(Reg::A6, 8, Reg::A4);
    a.ld(Reg::A7, 8, Reg::T5);
    a.sd(Reg::T6, 0, Reg::A4); // store pair
    a.sd(Reg::A7, 8, Reg::A4);
    a.sd(Reg::A5, 0, Reg::T5); // store pair
    a.sd(Reg::A6, 8, Reg::T5);
    a.mv(Reg::T0, Reg::T4);
    a.j(sift);
    a.bind(sift_done);
    a.addi(Reg::S3, Reg::S3, 1);
    a.li(Reg::T0, ops as i64);
    a.blt(Reg::S3, Reg::T0, top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "620.omnetpp",
        suite: Suite::SpecLike,
        program: a.assemble().expect("omnetpp assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// Recursive tree reduction (xalancbmk's DOM walks): 32-byte nodes
/// `{val, left, right, pad}` visited by a real call-stack recursion whose
/// prologues/epilogues are the canonical store-pair/load-pair source.
pub fn xalancbmk() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xa1a);
    let depth = 13usize;
    let n_nodes = (1usize << (depth + 1)) - 1;
    let vals: Vec<u64> = (0..n_nodes).map(|_| rng.gen::<u32>() as u64).collect();

    let reference = {
        // result(i) = val[i] + rotl(result(left), 1) ^ result(right)
        fn walk(vals: &[u64], i: usize) -> u64 {
            let l = 2 * i + 1;
            if l >= vals.len() {
                return vals[i];
            }
            let lv = walk(vals, l);
            let rv = walk(vals, l + 1);
            vals[i].wrapping_add(lv.rotate_left(1)) ^ rv
        }
        walk(&vals, 0)
    };

    let mut a = Asm::new();
    let base = a.zeros(0, 64);
    let mut words = Vec::with_capacity(n_nodes * 4);
    for (i, &v) in vals.iter().enumerate() {
        let l = 2 * i + 1;
        words.push(v);
        if l < n_nodes {
            words.push(base + (l as u64) * 32);
            words.push(base + ((l + 1) as u64) * 32);
        } else {
            words.push(0);
            words.push(0);
        }
        words.push(0);
    }
    let actual = a.words64(&words);
    assert_eq!(actual, base);

    let walk_fn = a.new_label();
    let done = a.new_label();
    // main: a0 = walk(root)
    a.li(Reg::A0, base as i64);
    a.call(walk_fn);
    a.j(done);

    // fn walk(a0 = node) -> a0
    a.bind(walk_fn);
    let leaf = a.new_label();
    // Peek left pointer first to avoid a frame for leaves.
    a.ld(Reg::T0, 8, Reg::A0);
    a.beqz(Reg::T0, leaf);
    let frame = prologue(&mut a, &[Reg::S0, Reg::S1]);
    a.mv(Reg::S0, Reg::A0); // node
    a.mv(Reg::A0, Reg::T0);
    a.call(walk_fn); // lv
    a.mv(Reg::S1, Reg::A0);
    a.ld(Reg::A0, 16, Reg::S0); // right
    a.call(walk_fn); // rv
    // result = (val + rotl(lv,1)) ^ rv
    a.slli(Reg::T1, Reg::S1, 1);
    a.srli(Reg::T2, Reg::S1, 63);
    a.or(Reg::T1, Reg::T1, Reg::T2);
    a.ld(Reg::T3, 0, Reg::S0); // val
    a.add(Reg::T1, Reg::T3, Reg::T1);
    a.xor(Reg::A0, Reg::T1, Reg::A0);
    epilogue(&mut a, &[Reg::S0, Reg::S1], frame);
    a.bind(leaf);
    a.ld(Reg::A0, 0, Reg::A0); // val
    a.ret();

    a.bind(done);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "623.xalancbmk",
        suite: Suite::SpecLike,
        program: a.assemble().expect("xalancbmk assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// Bitboard kernel (deepsjeng): LSB-extraction loops over 64-bit boards
/// with attack-table lookups — bit tricks plus scattered table loads.
pub fn deepsjeng() -> Workload {
    let mut rng = StdRng::seed_from_u64(0xd5e);
    let n = 6_000usize;
    let boards: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() & rng.gen::<u64>()).collect();
    let attacks: Vec<u64> = (0..64).map(|_| rng.gen()).collect();

    let reference = {
        let mut acc = 0u64;
        for &b0 in &boards {
            let mut b = b0;
            while b != 0 {
                let sq = b.trailing_zeros() as usize;
                acc = acc.wrapping_add(attacks[sq]).rotate_left(3);
                b &= b - 1;
            }
        }
        acc
    };

    let mut a = Asm::new();
    let boards_addr = a.words64(&boards);
    let attacks_addr = a.words64(&attacks);
    // De Bruijn trailing-zero table (multiply + shift + byte lookup).
    let debruijn: u64 = 0x03f7_9d71_b4ca_8b09;
    let mut tz_table = vec![0u8; 64];
    for i in 0..64u64 {
        tz_table[((debruijn << i) >> 58) as usize] = i as u8;
    }
    let tz_addr = a.bytes_aligned(tz_table, 64);

    a.la(Reg::S0, boards_addr);
    a.li(Reg::S1, n as i64);
    a.li(Reg::S2, 0); // acc
    a.la(Reg::S3, attacks_addr);
    a.la(Reg::S4, tz_addr);
    a.li(Reg::S5, debruijn as i64);
    let top = a.here();
    a.ld(Reg::T0, 0, Reg::S0); // board
    let bits = a.here();
    let board_done = a.new_label();
    a.beqz(Reg::T0, board_done);
    // sq = tz_table[((b & -b) * debruijn) >> 58]
    a.neg(Reg::T1, Reg::T0);
    a.addi(Reg::T3, Reg::T0, -1); // b-1 computed early (b &= b-1 later)
    a.and(Reg::T1, Reg::T1, Reg::T0);
    a.and(Reg::T0, Reg::T0, Reg::T3);
    a.mul(Reg::T1, Reg::T1, Reg::S5);
    a.srli(Reg::T1, Reg::T1, 58);
    a.add(Reg::T1, Reg::S4, Reg::T1);
    a.slli(Reg::T4, Reg::S2, 3); // start the rotate early
    a.lbu(Reg::T1, 0, Reg::T1); // sq
    a.slli(Reg::T1, Reg::T1, 3);
    a.srli(Reg::T5, Reg::S2, 61);
    a.add(Reg::T1, Reg::S3, Reg::T1);
    a.ld(Reg::T2, 0, Reg::T1); // attacks[sq]
    a.add(Reg::S2, Reg::S2, Reg::T2);
    // rotate_left(3)
    a.slli(Reg::T2, Reg::S2, 3);
    a.srli(Reg::S2, Reg::S2, 61);
    a.or(Reg::S2, Reg::S2, Reg::T2);
    let _ = (Reg::T4, Reg::T5);
    a.j(bits);
    a.bind(board_done);
    a.addi(Reg::S0, Reg::S0, 8);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "631.deepsjeng",
        suite: Suite::SpecLike,
        program: a.assemble().expect("deepsjeng assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// Go-board liberty scan (leela): a byte board with neighbour checks — byte
/// loads with short unpredictable branches.
pub fn leela() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x1ee1a);
    let size = 19usize;
    let w = size + 2; // padded border
    let mut board = vec![3u8; w * w]; // 3 = border
    for y in 1..=size {
        for x in 1..=size {
            board[y * w + x] = match rng.gen_range(0..3u8) {
                0 => 0, // empty
                1 => 1, // black
                _ => 2, // white
            };
        }
    }
    let passes = 400usize;

    let reference = {
        let mut acc = 0u64;
        for p in 0..passes {
            for y in 1..=size {
                for x in 1..=size {
                    let s = board[y * w + x];
                    if s == 0 || s == 3 {
                        continue;
                    }
                    let mut libs = 0u64;
                    for off in [-(w as i64), -1, 1, w as i64] {
                        let ni = (y * w + x) as i64 + off;
                        if board[ni as usize] == 0 {
                            libs += 1;
                        }
                    }
                    acc = acc.wrapping_add(libs.wrapping_mul((s as u64) + p as u64));
                }
            }
        }
        acc
    };

    let mut a = Asm::new();
    let board_addr = a.bytes_aligned(board, 64);
    let wdim = w as i64;
    a.la(Reg::S0, board_addr);
    a.li(Reg::S2, 0); // acc
    a.li(Reg::S6, 0); // pass index
    let pass_top = a.here();
    a.li(Reg::S3, 1); // y
    let row = a.here();
    // row pointer = board + y*w
    a.li(Reg::T0, wdim);
    a.mul(Reg::T0, Reg::S3, Reg::T0);
    a.add(Reg::S5, Reg::S0, Reg::T0);
    a.li(Reg::S4, 1); // x
    let col = a.here();
    let skip = a.new_label();
    a.add(Reg::T0, Reg::S5, Reg::S4); // &board[y][x]
    a.lbu(Reg::T1, 0, Reg::T0); // stone
    a.beqz(Reg::T1, skip);
    a.li(Reg::T2, 3);
    a.beq(Reg::T1, Reg::T2, skip);
    // count empty neighbours
    a.li(Reg::T3, 0);
    for off in [-(w as i32), -1, 1, w as i32] {
        let occupied = a.new_label();
        a.lbu(Reg::T4, off, Reg::T0);
        a.bnez(Reg::T4, occupied);
        a.addi(Reg::T3, Reg::T3, 1);
        a.bind(occupied);
    }
    // acc += libs * (stone + pass)
    a.add(Reg::T4, Reg::T1, Reg::S6);
    a.mul(Reg::T4, Reg::T3, Reg::T4);
    a.add(Reg::S2, Reg::S2, Reg::T4);
    a.bind(skip);
    a.addi(Reg::S4, Reg::S4, 1);
    a.li(Reg::T5, size as i64 + 1);
    a.blt(Reg::S4, Reg::T5, col);
    a.addi(Reg::S3, Reg::S3, 1);
    a.blt(Reg::S3, Reg::T5, row);
    a.addi(Reg::S6, Reg::S6, 1);
    a.li(Reg::T5, passes as i64);
    a.blt(Reg::S6, Reg::T5, pass_top);
    emit_output(&mut a, Reg::S2);
    a.halt();

    Workload {
        name: "641.leela",
        suite: Suite::SpecLike,
        program: a.assemble().expect("leela assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// Recursive digit-permutation search (exchange2): swap-based permutation
/// of a small byte array with real recursion — call/return dense, byte
/// loads/stores, prologue/epilogue pair idioms.
pub fn exchange2() -> Workload {
    let digits = 7usize;
    let reference = {
        // Count permutations whose alternating sum is non-negative, and
        // accumulate a positional checksum.
        fn recurse(d: &mut [u8], k: usize, acc: &mut u64, count: &mut u64) {
            if k == d.len() {
                let mut alt = 0i64;
                let mut pos = 0u64;
                for (i, &v) in d.iter().enumerate() {
                    if i % 2 == 0 {
                        alt += v as i64;
                    } else {
                        alt -= v as i64;
                    }
                    pos = pos.wrapping_add((v as u64) << (i * 3 % 48));
                }
                if alt >= 0 {
                    *count += 1;
                    *acc = acc.wrapping_add(pos);
                }
                return;
            }
            for i in k..d.len() {
                d.swap(k, i);
                recurse(d, k + 1, acc, count);
                d.swap(k, i);
            }
        }
        let mut d: Vec<u8> = (1..=digits as u8).collect();
        let mut acc = 0u64;
        let mut count = 0u64;
        recurse(&mut d, 0, &mut acc, &mut count);
        acc.wrapping_add(count << 48)
    };

    let mut a = Asm::new();
    let arr = {
        let d: Vec<u8> = (1..=digits as u8).collect();
        a.bytes_aligned(d, 8)
    };
    // Globals in registers: S8 acc, S9 count, S10 &digits.
    let recurse_fn = a.new_label();
    let done = a.new_label();
    a.li(Reg::S8, 0);
    a.li(Reg::S9, 0);
    a.la(Reg::S10, arr);
    a.li(Reg::A0, 0); // k
    a.call(recurse_fn);
    a.j(done);

    // fn recurse(a0 = k)
    a.bind(recurse_fn);
    let is_leaf = a.new_label();
    a.li(Reg::T0, digits as i64);
    a.beq(Reg::A0, Reg::T0, is_leaf);
    let frame = prologue(&mut a, &[Reg::S0, Reg::S1]);
    a.mv(Reg::S0, Reg::A0); // k
    a.mv(Reg::S1, Reg::A0); // i
    let loop_top = a.here();
    // swap d[k], d[i]
    a.add(Reg::T1, Reg::S10, Reg::S0);
    a.add(Reg::T2, Reg::S10, Reg::S1);
    a.lbu(Reg::T3, 0, Reg::T1);
    a.lbu(Reg::T4, 0, Reg::T2);
    a.sb(Reg::T4, 0, Reg::T1);
    a.sb(Reg::T3, 0, Reg::T2);
    a.addi(Reg::A0, Reg::S0, 1);
    a.call(recurse_fn);
    // swap back
    a.add(Reg::T1, Reg::S10, Reg::S0);
    a.add(Reg::T2, Reg::S10, Reg::S1);
    a.lbu(Reg::T3, 0, Reg::T1);
    a.lbu(Reg::T4, 0, Reg::T2);
    a.sb(Reg::T4, 0, Reg::T1);
    a.sb(Reg::T3, 0, Reg::T2);
    a.addi(Reg::S1, Reg::S1, 1);
    a.li(Reg::T0, digits as i64);
    a.blt(Reg::S1, Reg::T0, loop_top);
    epilogue(&mut a, &[Reg::S0, Reg::S1], frame);

    // leaf: evaluate permutation
    a.bind(is_leaf);
    a.li(Reg::T0, 0); // i
    a.li(Reg::T1, 0); // alt
    a.li(Reg::T2, 0); // pos
    let scan = a.here();
    let odd = a.new_label();
    let next = a.new_label();
    a.add(Reg::T3, Reg::S10, Reg::T0);
    a.lbu(Reg::T3, 0, Reg::T3);
    a.andi(Reg::T4, Reg::T0, 1);
    a.bnez(Reg::T4, odd);
    a.add(Reg::T1, Reg::T1, Reg::T3);
    a.j(next);
    a.bind(odd);
    a.sub(Reg::T1, Reg::T1, Reg::T3);
    a.bind(next);
    // pos += v << (i*3 % 48)  (i <= 6 so i*3 <= 18, no mod needed)
    a.slli(Reg::T4, Reg::T0, 1);
    a.addi(Reg::T0, Reg::T0, 0) /* gap */;
    a.add(Reg::T4, Reg::T4, Reg::T0); // i*3
    a.sll(Reg::T3, Reg::T3, Reg::T4);
    a.add(Reg::T2, Reg::T2, Reg::T3);
    a.addi(Reg::T0, Reg::T0, 1);
    a.li(Reg::T4, digits as i64);
    a.blt(Reg::T0, Reg::T4, scan);
    let rejected = a.new_label();
    a.bltz(Reg::T1, rejected);
    a.addi(Reg::S9, Reg::S9, 1);
    a.add(Reg::S8, Reg::S8, Reg::T2);
    a.bind(rejected);
    a.ret();

    a.bind(done);
    a.slli(Reg::S9, Reg::S9, 48);
    a.add(Reg::A0, Reg::S8, Reg::S9);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "648.exchange2",
        suite: Suite::SpecLike,
        program: a.assemble().expect("exchange2 assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// LZ-style match-find-and-copy (xz compression path): word-granular match
/// detection against a hash table, then 32-byte match copies (plus token
/// records) into a cold output stream, software-scheduled so the same-line
/// store pairs are non-consecutive. The structural-stall monster of Fig. 9
/// (the paper's baseline spends 88% of its cycles in dispatch stalls and
/// Helios gains 70%; here the baseline spends ~75% and Helios is the
/// suite's largest winner).
pub fn xz_1() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x717);
    let n = 32_768usize; // input words
    // Compressible input: runs of a repeated phrase with noise bursts.
    let phrase: Vec<u64> = (0..8).map(|_| rng.gen()).collect();
    let mut input: Vec<u64> = Vec::with_capacity(n);
    while input.len() < n {
        if rng.gen_bool(0.93) {
            for k in 0..rng.gen_range(24..64usize) {
                input.push(phrase[k & 7]);
            }
        } else {
            for _ in 0..rng.gen_range(2..4usize) {
                input.push(rng.gen());
            }
        }
    }
    input.truncate(n);

    const HASH_BITS: u32 = 14;
    let hash8 = |w: u64| -> usize {
        (w.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> (64 - HASH_BITS)) as usize
    };
    let reference = {
        let mut head = vec![u64::MAX; 1 << HASH_BITS];
        let mut matches = 0u64;
        let mut literals = 0u64;
        let mut out_words = 0u64;
        let mut pos = 0usize;
        while pos + 4 <= n {
            let w = input[pos];
            let h = hash8(w);
            let cand = head[h];
            head[h] = pos as u64;
            if cand != u64::MAX && input[cand as usize] == w {
                // Match: copy four words + a two-word token record.
                matches += 1;
                out_words += 6;
                pos += 4;
            } else {
                literals += 1;
                out_words += 2; // literal word + token word
                pos += 1;
            }
        }
        out_words.wrapping_add(matches << 24).wrapping_add(literals << 44)
    };

    let mut a = Asm::new();
    let in_addr = a.words64(&input);
    let head_addr = {
        let heads = vec![u64::MAX; 1 << HASH_BITS];
        a.words64(&heads)
    };
    let out_addr = a.zeros(8 * (6 * n as u64 + 64), 64);

    a.la(Reg::S0, in_addr);
    a.la(Reg::S1, head_addr);
    a.la(Reg::S2, out_addr); // output cursor
    a.li(Reg::S3, 0); // pos (word index)
    a.li(Reg::S4, (n - 4) as i64);
    a.li(Reg::S5, 0); // literals
    a.li(Reg::S6, 0); // matches
    a.li(Reg::S7, 0); // out_words
    a.li(Reg::S8, 0x9e37_79b9_7f4a_7c15u64 as i64);
    let top = a.here();
    let finish = a.new_label();
    a.blt(Reg::S4, Reg::S3, finish);
    // w = input[pos]; h = (w * C) >> (64 - 10)
    a.slli(Reg::T0, Reg::S3, 3);
    a.li(Reg::T6, 0); // token scratch reset (separates the LEA idiom)
    a.add(Reg::T0, Reg::S0, Reg::T0);
    a.ld(Reg::T1, 0, Reg::T0); // w
    a.mul(Reg::T2, Reg::T1, Reg::S8);
    a.srli(Reg::T2, Reg::T2, 64 - 14);
    a.slli(Reg::T2, Reg::T2, 3);
    a.ori(Reg::T6, Reg::T6, 1);
    a.add(Reg::T2, Reg::S1, Reg::T2);
    a.ld(Reg::T3, 0, Reg::T2); // cand
    a.sd(Reg::S3, 0, Reg::T2); // head[h] = pos
    let literal = a.new_label();
    let advance = a.new_label();
    a.bltz(Reg::T3, literal); // empty slot
    a.slli(Reg::T4, Reg::T3, 3);
    a.xori(Reg::T6, Reg::T6, 2);
    a.add(Reg::T4, Reg::S0, Reg::T4);
    a.ld(Reg::T4, 0, Reg::T4); // input[cand]
    a.bne(Reg::T4, Reg::T1, literal);
    // --- match: copy input[pos..pos+4] + token record {pos, cand} ---
    // The copy is software-scheduled the way a compiler would emit it:
    // same-line loads and stores are separated by independent token
    // arithmetic, so most pairs are *non-consecutive* (Helios NCSF
    // territory) while remaining same-line (NCTF).
    a.addi(Reg::S6, Reg::S6, 1);
    a.ld(Reg::A2, 0, Reg::T0);
    a.sub(Reg::A6, Reg::S3, Reg::T3); // token distance
    a.ld(Reg::A3, 8, Reg::T0);
    a.sd(Reg::A2, 0, Reg::S2);
    a.slli(Reg::A7, Reg::A6, 4);
    a.ld(Reg::A4, 16, Reg::T0);
    a.sd(Reg::A3, 8, Reg::S2);
    a.or(Reg::A7, Reg::A7, Reg::S6);
    a.ld(Reg::A5, 24, Reg::T0);
    a.sd(Reg::A4, 16, Reg::S2);
    a.andi(Reg::A6, Reg::A6, 255);
    a.sd(Reg::A5, 24, Reg::S2);
    a.add(Reg::A7, Reg::A7, Reg::A6);
    a.sd(Reg::A7, 32, Reg::S2); // token record
    a.addi(Reg::S7, Reg::S7, 6);
    a.sd(Reg::T3, 40, Reg::S2);
    a.addi(Reg::S2, Reg::S2, 48);
    a.addi(Reg::S3, Reg::S3, 4);
    a.j(advance);
    // --- literal: word + token ---
    a.bind(literal);
    a.addi(Reg::S5, Reg::S5, 1);
    a.sd(Reg::T1, 0, Reg::S2); // literal word ...
    a.addi(Reg::S7, Reg::S7, 2);
    a.addi(Reg::S3, Reg::S3, 1);
    a.sd(Reg::S3, 8, Reg::S2); // ... then the token, 2 µ-ops later (NCSF)
    a.addi(Reg::S2, Reg::S2, 16);
    a.bind(advance);
    a.j(top);
    a.bind(finish);
    a.slli(Reg::S6, Reg::S6, 24);
    a.slli(Reg::S5, Reg::S5, 44);
    a.add(Reg::A0, Reg::S7, Reg::S6);
    a.add(Reg::A0, Reg::A0, Reg::S5);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "657.xz_1",
        suite: Suite::SpecLike,
        program: a.assemble().expect("xz_1 assembles"),
        expected: vec![reference],
        fuel: 5_000_000,
    }
}

/// Range-coder-style bit modeling (xz's entropy stage): adaptive
/// probability updates with shift/mask chains — ALU-idiom heavy, light on
/// memory (the paper's other "Others prevalent" case).
pub fn xz_2() -> Workload {
    let mut rng = StdRng::seed_from_u64(0x718);
    let n_bits = 60_000usize;
    let bits: Vec<u8> = (0..n_bits).map(|_| rng.gen_range(0..2u8)).collect();

    let reference = {
        let mut prob = vec![1024u64; 64]; // 11-bit probabilities
        let mut range = 0xffff_ffffu64;
        let mut low = 0u64;
        let mut ctx = 0usize;
        let mut acc = 0u64;
        for &b in &bits {
            let p = prob[ctx];
            let bound = (range >> 11).wrapping_mul(p);
            if b == 0 {
                range = bound;
                prob[ctx] = p + ((2048 - p) >> 5);
            } else {
                low = low.wrapping_add(bound);
                range = range.wrapping_sub(bound);
                prob[ctx] = p - (p >> 5);
            }
            if range < (1 << 24) {
                range <<= 8;
                low <<= 8;
                acc = acc.wrapping_add(low ^ range);
            }
            ctx = ((ctx << 1) | b as usize) & 63;
        }
        acc.wrapping_add(low).wrapping_add(range)
    };

    let mut a = Asm::new();
    let bits_addr = a.bytes_aligned(bits, 64);
    let prob_addr = a.words64(&vec![1024u64; 64]);

    a.la(Reg::S0, bits_addr);
    a.li(Reg::S1, n_bits as i64);
    a.la(Reg::S2, prob_addr);
    a.li(Reg::S3, 0xffff_ffff); // range
    a.li(Reg::S4, 0); // low
    a.li(Reg::S5, 0); // ctx
    a.li(Reg::S6, 0); // acc
    a.li(Reg::S7, 1 << 24);
    let top = a.here();
    a.lbu(Reg::T0, 0, Reg::S0); // bit
    a.slli(Reg::T1, Reg::S5, 3);
    a.add(Reg::T1, Reg::S2, Reg::T1); // &prob[ctx]
    a.ld(Reg::T2, 0, Reg::T1); // p
    a.srli(Reg::T3, Reg::S3, 11);
    a.mul(Reg::T3, Reg::T3, Reg::T2); // bound
    let one = a.new_label();
    let norm = a.new_label();
    a.bnez(Reg::T0, one);
    // bit 0
    a.mv(Reg::S3, Reg::T3);
    a.li(Reg::T4, 2048);
    a.sub(Reg::T4, Reg::T4, Reg::T2);
    a.srli(Reg::T4, Reg::T4, 5);
    a.add(Reg::T2, Reg::T2, Reg::T4);
    a.sd(Reg::T2, 0, Reg::T1);
    a.j(norm);
    a.bind(one);
    a.add(Reg::S4, Reg::S4, Reg::T3);
    a.sub(Reg::S3, Reg::S3, Reg::T3);
    a.srli(Reg::T4, Reg::T2, 5);
    a.sub(Reg::T2, Reg::T2, Reg::T4);
    a.sd(Reg::T2, 0, Reg::T1);
    a.bind(norm);
    let no_norm = a.new_label();
    a.bgeu(Reg::S3, Reg::S7, no_norm);
    a.slli(Reg::S3, Reg::S3, 8);
    a.slli(Reg::S4, Reg::S4, 8);
    a.xor(Reg::T4, Reg::S4, Reg::S3);
    a.add(Reg::S6, Reg::S6, Reg::T4);
    a.bind(no_norm);
    // ctx = ((ctx << 1) | bit) & 63
    a.slli(Reg::S5, Reg::S5, 1);
    a.or(Reg::S5, Reg::S5, Reg::T0);
    a.andi(Reg::S5, Reg::S5, 63);
    a.addi(Reg::S0, Reg::S0, 1);
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.add(Reg::A0, Reg::S6, Reg::S4);
    a.add(Reg::A0, Reg::A0, Reg::S3);
    emit_output(&mut a, Reg::A0);
    a.halt();

    Workload {
        name: "657.xz_2",
        suite: Suite::SpecLike,
        program: a.assemble().expect("xz_2 assembles"),
        expected: vec![reference],
        fuel: 3_000_000,
    }
}
