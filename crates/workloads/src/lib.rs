//! # helios-workloads — synthetic benchmark kernels
//!
//! The paper evaluates on SPEC CPU2017 (speed) and MiBench (large inputs),
//! neither of which can be redistributed or cross-compiled here. Per the
//! substitution policy in DESIGN.md, every benchmark is replaced by a
//! hand-written RV64 kernel — assembled with `helios-isa` — that reproduces
//! the *fusion-relevant* behaviour of the original: its mix of memory / ALU /
//! control µ-ops, its load-pair and store-pair idom density, its
//! non-consecutive same-cache-line access patterns, and its stall character
//! (e.g. `xz_1`'s store-queue pressure, `bitcount`/`susan`/`xz_2`'s
//! non-memory-idiom dominance, `mcf`'s pointer chasing).
//!
//! Every kernel self-validates: it reports one or more checksums through the
//! emulator's `write` ecall, and each [`Workload`] carries the expected
//! values computed by a Rust reference implementation of the same algorithm.
//!
//! # Examples
//!
//! ```
//! let w = helios_workloads::workload("dijkstra").expect("registered");
//! w.validate().expect("kernel output matches the Rust reference");
//! ```

mod kernels;

pub use kernels::{all_workloads, workload};

use helios_emu::{Cpu, EmuError, RetireStream, StoreError, Trace, TraceStore};
use helios_isa::{Asm, Program, Reg};

/// Which of the paper's suites a workload mirrors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// SPEC CPU2017-like kernels.
    SpecLike,
    /// MiBench-like kernels.
    MiBenchLike,
}

/// A runnable benchmark kernel with its self-validation reference.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name as used in the paper's figures (e.g. `"657.xz_1"`).
    pub name: &'static str,
    /// Suite it mirrors.
    pub suite: Suite,
    /// The assembled program.
    pub program: Program,
    /// Expected `write`-ecall outputs (the kernel's checksums).
    pub expected: Vec<u64>,
    /// µ-op budget that comfortably covers the kernel's dynamic length.
    pub fuel: u64,
}

impl Workload {
    /// A retired-µ-op stream for feeding the pipeline model.
    pub fn stream(&self) -> RetireStream {
        RetireStream::new(self.program.clone(), self.fuel)
    }

    /// Records the kernel's retired-µ-op trace in memory, for replay under
    /// any number of pipeline configurations (`trace.replay()` per run).
    /// Sweeps that run a workload more than once per *process lifetime*
    /// should prefer [`Workload::stored`], which persists the recording in
    /// a content-addressed [`TraceStore`].
    ///
    /// # Errors
    ///
    /// Propagates emulation faults; a kernel that fails to halt within its
    /// `fuel` budget is an error, never a silently truncated trace.
    pub fn trace(&self) -> Result<Trace, EmuError> {
        Trace::record(self.program.clone(), self.fuel)
    }

    /// The kernel's trace from `store`, recorded on first demand and a pure
    /// (verified) disk hit ever after — across threads, processes, and
    /// sweeps.
    ///
    /// # Errors
    ///
    /// See [`TraceStore::get_or_record`].
    pub fn stored(&self, store: &TraceStore) -> Result<Trace, StoreError> {
        store.get_or_record(self.name, &self.program, self.fuel)
    }

    /// Runs the kernel functionally and checks its checksums against the
    /// Rust reference.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch or emulation failure.
    pub fn validate(&self) -> Result<(), String> {
        let mut cpu = Cpu::new(self.program.clone());
        cpu.run(self.fuel)
            .map_err(|e| format!("{}: {e}", self.name))?;
        if cpu.output() != self.expected.as_slice() {
            return Err(format!(
                "{}: checksum mismatch: got {:?}, expected {:?}",
                self.name,
                cpu.output(),
                self.expected
            ));
        }
        Ok(())
    }

    /// Dynamic instruction count (runs the emulator once).
    pub fn dynamic_length(&self) -> u64 {
        let mut cpu = Cpu::new(self.program.clone());
        cpu.run(self.fuel).unwrap_or(self.fuel)
    }
}

/// Emits `value-in-src` to the output log (`write` ecall) clobbering
/// `a0`/`a7`.
pub(crate) fn emit_output(a: &mut Asm, src: Reg) {
    if src != Reg::A0 {
        a.mv(Reg::A0, src);
    }
    a.li(Reg::A7, 64);
    a.ecall();
}

/// Emits a standard function prologue saving `ra` and the given s-registers:
/// the canonical GCC pattern that generates store-pair idioms. Returns the
/// frame size.
pub(crate) fn prologue(a: &mut Asm, saved: &[Reg]) -> i32 {
    let frame = (((saved.len() + 1) * 8 + 15) & !15) as i32;
    a.addi(Reg::SP, Reg::SP, -frame);
    a.sd(Reg::RA, frame - 8, Reg::SP);
    for (i, &r) in saved.iter().enumerate() {
        a.sd(r, frame - 16 - (i as i32) * 8, Reg::SP);
    }
    frame
}

/// Emits the matching epilogue (load-pair idioms) and `ret`.
pub(crate) fn epilogue(a: &mut Asm, saved: &[Reg], frame: i32) {
    a.ld(Reg::RA, frame - 8, Reg::SP);
    for (i, &r) in saved.iter().enumerate() {
        a.ld(r, frame - 16 - (i as i32) * 8, Reg::SP);
    }
    a.addi(Reg::SP, Reg::SP, frame);
    a.ret();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_named_like_the_paper() {
        let all = all_workloads();
        assert!(all.len() >= 30, "paper evaluates 32 applications");
        for expect in [
            "600.perlbench_1",
            "602.gcc_1",
            "605.mcf",
            "657.xz_1",
            "657.xz_2",
            "dijkstra",
            "qsort",
            "susan",
            "typeset",
        ] {
            assert!(
                all.iter().any(|w| w.name == expect),
                "missing workload {expect}"
            );
        }
        // Names unique.
        let mut names: Vec<_> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload("crc32").is_some());
        assert!(workload("not-a-benchmark").is_none());
    }
}
