//! Functional validation: every kernel's emitted checksum must match its
//! Rust reference implementation, proving the assembly is algorithmically
//! correct before any timing simulation trusts it.

use helios_workloads::all_workloads;

#[test]
fn every_workload_validates_against_its_reference() {
    let mut failures = Vec::new();
    for w in all_workloads() {
        if let Err(e) = w.validate() {
            failures.push(e);
        }
    }
    assert!(failures.is_empty(), "failures:\n{}", failures.join("\n"));
}

#[test]
fn dynamic_lengths_are_simulation_sized() {
    for w in all_workloads() {
        let len = w.dynamic_length();
        assert!(
            (40_000..3_000_000).contains(&len),
            "{}: dynamic length {len} out of the intended range",
            w.name
        );
    }
}
