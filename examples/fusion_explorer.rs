//! Fusion-opportunity explorer: reproduces the paper's §III motivation
//! study on a workload of your choice — which idioms appear, how contiguous
//! the memory pairs are, and how much non-consecutive potential exists.
//!
//! ```text
//! cargo run --release --example fusion_explorer [workload-name]
//! ```

use helios_core::{classify_contiguity, match_idiom, Contiguity, ALL_IDIOMS};
use helios_emu::Retired;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fft".to_string());
    let Some(w) = helios::workload(&name) else {
        eprintln!("unknown workload `{name}`; available:");
        for w in helios::all_workloads() {
            eprintln!("  {}", w.name);
        }
        std::process::exit(1);
    };

    let trace: Vec<Retired> = w.stream().collect();
    println!("{}: {} dynamic µ-ops", w.name, trace.len());

    // Idiom census (consecutive pairs, greedy).
    let mut counts = [0u64; 8];
    let mut i = 0;
    while i + 1 < trace.len() {
        if let Some(idm) = match_idiom(&trace[i].inst, &trace[i + 1].inst, true, true) {
            counts[ALL_IDIOMS.iter().position(|&x| x == idm).unwrap()] += 1;
            i += 2;
        } else {
            i += 1;
        }
    }
    println!("\nconsecutive Table I idioms:");
    for (idm, &n) in ALL_IDIOMS.iter().zip(&counts) {
        if n > 0 {
            println!(
                "  {:<28} {:>8}  ({:.2}% of µ-ops)",
                idm.name(),
                n,
                100.0 * 2.0 * n as f64 / trace.len() as f64
            );
        }
    }

    // Same-line pair distance histogram: how far apart are fusible memory
    // pairs in the dynamic stream? (the paper's catalyst averages 10.5)
    let mut dist_hist = [0u64; 9]; // 1, 2, 3, 4, 5-8, 9-16, 17-32, 33-64, none
    let mut sum = 0u64;
    let mut pairs = 0u64;
    for h in 0..trace.len() {
        let Some(hm) = trace[h].mem else { continue };
        let mut found = false;
        for (off, r) in trace[h + 1..trace.len().min(h + 65)].iter().enumerate() {
            let Some(tm) = r.mem else { continue };
            if tm.is_store != hm.is_store {
                continue;
            }
            if classify_contiguity(&hm, &tm, 64).fusible() {
                let d = off as u64 + 1;
                let bucket = match d {
                    1 => 0,
                    2 => 1,
                    3 => 2,
                    4 => 3,
                    5..=8 => 4,
                    9..=16 => 5,
                    17..=32 => 6,
                    _ => 7,
                };
                dist_hist[bucket] += 1;
                sum += d;
                pairs += 1;
                found = true;
                break;
            }
        }
        if !found {
            dist_hist[8] += 1;
        }
    }
    println!("\nnearest same-64B-line partner distance (per memory µ-op):");
    for (label, &n) in ["1", "2", "3", "4", "5-8", "9-16", "17-32", "33-64", "none"]
        .iter()
        .zip(&dist_hist)
    {
        println!("  {label:>6}: {n}");
    }
    if pairs > 0 {
        println!(
            "  mean distance {:.1} µ-ops (paper's committed NCSF mean: 10.5)",
            sum as f64 / pairs as f64
        );
    }

    // Contiguity classes for adjacent memory pairs (Fig. 4's view).
    let mut classes = [0u64; 5];
    for win in trace.windows(2) {
        if let (Some(a), Some(b)) = (win[0].mem, win[1].mem) {
            if a.is_store == b.is_store {
                let c = classify_contiguity(&a, &b, 64);
                let idx = match c {
                    Contiguity::Contiguous => 0,
                    Contiguity::Overlapping => 1,
                    Contiguity::SameLine => 2,
                    Contiguity::NextLine => 3,
                    Contiguity::TooFar => 4,
                };
                classes[idx] += 1;
            }
        }
    }
    println!("\nadjacent same-kind memory pairs by contiguity:");
    for (label, &n) in ["contiguous", "overlapping", "same line", "next line", "too far"]
        .iter()
        .zip(&classes)
    {
        println!("  {label:>12}: {n}");
    }
}
