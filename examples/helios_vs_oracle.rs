//! Helios vs the oracle upper bound on one workload: pair capture, predictor
//! quality, and where the remaining gap comes from (Fig. 8 / Table III in
//! miniature).
//!
//! ```text
//! cargo run --release --example helios_vs_oracle [workload-name]
//! ```

use helios::{FusionMode, SimRequest};
use helios_core::RepairCase;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "657.xz_1".to_string());
    let Some(w) = helios::workload(&name) else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    };

    println!("simulating {} under Helios and OracleFusion…", w.name);
    let h = SimRequest::mode(&w, FusionMode::Helios).run().stats;
    let o = SimRequest::mode(&w, FusionMode::OracleFusion).run().stats;
    let b = SimRequest::mode(&w, FusionMode::NoFusion).run().stats;

    println!("\n                     {:>12} {:>12}", "Helios", "Oracle");
    println!(
        "IPC (vs base {:.3}) {:>12.3} {:>12.3}",
        b.ipc(),
        h.ipc(),
        o.ipc()
    );
    println!(
        "CSF pairs           {:>12} {:>12}",
        h.fusion.csf_pairs, o.fusion.csf_pairs
    );
    println!(
        "NCSF pairs          {:>12} {:>12}",
        h.fusion.ncsf_pairs, o.fusion.ncsf_pairs
    );
    println!(
        "DBR pairs           {:>12} {:>12}",
        h.fusion.dbr_pairs, o.fusion.dbr_pairs
    );
    println!(
        "mean NCSF distance  {:>12.1} {:>12.1}   (paper: 10.5)",
        h.fusion.mean_ncsf_distance(),
        o.fusion.mean_ncsf_distance()
    );

    println!("\nHelios predictor:");
    println!("  predictions        {}", h.fusion.predictions);
    println!("  correct            {}", h.fusion.predictions_correct);
    println!("  accuracy           {:.2}%  (paper avg: 99.7%)", h.fusion.accuracy_pct());
    println!("  fusion MPKI        {:.4}  (paper avg: 0.142)", h.fusion_mpki());
    println!("  nest aborts        {}", h.ncsf_nest_aborts);

    println!("\nHelios repairs (§IV-C):");
    for case in RepairCase::ALL {
        let n = h.fusion.repair_count(case);
        if n > 0 {
            println!("  {case:?}: {n}");
        }
    }
    if h.fusion.repairs.iter().all(|&r| r == 0) {
        println!("  (none)");
    }
}
