//! Quickstart: assemble a kernel, run it functionally, then simulate it
//! under no-fusion and Helios and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use helios::{FusionMode, SimRequest};
use helios_emu::{Cpu, RetireStream};
use helios_isa::{parse_asm, Reg};
use helios_uarch::{PipeConfig, Pipeline};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a kernel in RISC-V assembly. The two loads at offsets 0 and
    //    32 share a 64-byte line but are separated by ALU work — invisible
    //    to static (consecutive) fusion, discoverable by Helios (§IV).
    let prog = parse_asm(
        r#"
        li   s0, 0x100000        # buffer base (64-byte aligned)
        li   s1, 20000           # iterations
        li   s2, 0               # accumulator
    top:
        ld   a0, 0(s0)           # head nucleus
        add  s2, s2, a0          # catalyst
        xori t0, s2, 0x5a        # catalyst
        ld   a1, 32(s0)          # tail nucleus: same line, distance 3
        add  s2, s2, a1
        addi s1, s1, -1
        bnez s1, top
        ebreak
    "#,
    )?;

    // 2. Execute functionally (the Spike substitute).
    let mut cpu = Cpu::new(prog.clone());
    cpu.run(1_000_000)?;
    println!(
        "functional run: {} instructions retired, a-regs sum = {}",
        cpu.retired(),
        cpu.reg(Reg::S2)
    );

    // 3. Replay through the cycle-level model, with and without Helios.
    for mode in [FusionMode::NoFusion, FusionMode::CsfSbr, FusionMode::Helios] {
        let stream = RetireStream::new(prog.clone(), 1_000_000);
        let mut pipe = Pipeline::new(PipeConfig::with_fusion(mode), stream);
        let s = pipe.try_run(100_000_000)?;
        println!(
            "{:<10} IPC {:.3}  fused pairs: {} CSF + {} NCSF  (prediction accuracy {:.1}%)",
            mode.name(),
            s.ipc(),
            s.fusion.csf_pairs,
            s.fusion.ncsf_pairs,
            s.fusion.accuracy_pct(),
        );
    }

    // 4. The registered benchmark suite works the same way:
    let w = helios::workload("dijkstra").expect("registered workload");
    w.validate().expect("kernel matches its Rust reference");
    let s = SimRequest::mode(&w, FusionMode::Helios).run().stats;
    println!(
        "dijkstra under Helios: IPC {:.3}, {} NCSF pairs committed",
        s.ipc(),
        s.fusion.ncsf_pairs
    );
    Ok(())
}
