//! Stall breakdown for one workload across all fusion configurations —
//! the Fig. 9 view, with the full resource attribution.
//!
//! ```text
//! cargo run --release --example stall_analysis [workload-name]
//! ```

use helios::{FusionMode, SimRequest};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "657.xz_1".to_string());
    let Some(w) = helios::workload(&name) else {
        eprintln!("unknown workload `{name}`");
        std::process::exit(1);
    };

    println!("{}: stall cycles by cause (% of total cycles)", w.name);
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>7}",
        "config", "IPC", "rename", "ROB", "IQ", "LQ", "SQ", "redirect", "Fig9%"
    );
    for mode in FusionMode::ALL {
        let s = SimRequest::mode(&w, mode).run().stats;
        let pct = |n: u64| 100.0 * n as f64 / s.cycles.max(1) as f64;
        println!(
            "{:<14} {:>7.3} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>8.1}% {:>6.1}%",
            mode.name(),
            s.ipc(),
            pct(s.rename_stall_cycles),
            pct(s.dispatch_stall_rob),
            pct(s.dispatch_stall_iq),
            pct(s.dispatch_stall_lq),
            pct(s.dispatch_stall_sq),
            pct(s.fetch_stall_redirect),
            s.stall_pct(),
        );
    }
    println!("\n(the paper's Fig. 9 metric is the rename+dispatch structural column)");
}
