#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, then a figure-pipeline smoke that checks
# every per-figure JSON artifact parses and archives one Konata trace.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> sweep smoke: fig10 --quick --jobs 2 (timed)"
# Quick-run artifacts go to a scratch dir so CI never clobbers the committed
# full-suite artifacts under results/.
scratch="results/ci-quick"
rm -rf "$scratch"
mkdir -p "$scratch"
export HELIOS_RESULTS_DIR="$scratch"
sweep_start=$(date +%s)
cargo run --release -q -p helios-bench --bin fig10 -- --quick --jobs 2 > /dev/null
sweep_end=$(date +%s)
echo "sweep smoke: $((sweep_end - sweep_start))s wall"
# Archive the throughput record so simulator-performance regressions show up
# in the trajectory (results/BENCH_sweep_quick.json is the smoke run;
# results/BENCH_sweep.json is the committed full-sweep record and the
# benchmark of record).
#
# Perf smoke: warn — never fail — when simulated Mcycles/s drops >20% below
# the committed quick record. Wall-clock on a shared CI host is noisy, so a
# red build on a throughput number would train people to ignore red builds;
# the warning plus the archived trajectory is the actionable signal.
if baseline=$(git show HEAD:results/BENCH_sweep_quick.json 2>/dev/null); then
    python3 - "$baseline" <<'PY' || true
import json, sys
base = json.loads(sys.argv[1])["simulated_mcycles_per_sec"]
now = json.load(open("BENCH_sweep.json"))["simulated_mcycles_per_sec"]
if now < 0.8 * base:
    print(f"ci: WARNING — quick-sweep throughput {now:.3f} Mcycles/s is "
          f">20% below committed baseline {base:.3f} (non-blocking)")
else:
    print(f"perf smoke: {now:.3f} Mcycles/s vs committed {base:.3f} — ok")
PY
else
    echo "perf smoke: no committed results/BENCH_sweep_quick.json baseline; skipping comparison"
fi
mkdir -p results
mv BENCH_sweep.json results/BENCH_sweep_quick.json
cat results/BENCH_sweep_quick.json

echo "==> fuzz smoke: fixed-seed differential campaign + corpus replay"
cargo run --release -q -p helios-bench --bin fuzz -- --seed 1 --iters 500 --quiet
cargo run --release -q -p helios-bench --bin fuzz -- --replay tests/corpus

echo "==> figure smoke: every report binary on the --quick subset"
for bin in fig02 fig03 fig04 fig05 fig08 fig09 table1 table2 table3 ablation; do
    echo "  -> $bin"
    cargo run --release -q -p helios-bench --bin "$bin" -- --quick --jobs 2 > /dev/null
done

echo "==> validating per-figure JSON artifacts"
for id in fig02 fig03 fig04 fig05 fig08 fig09 fig10 table1 table2 table3 ablation fuzz; do
    json="$scratch/$id.json"
    if [ ! -f "$json" ]; then
        echo "ci: FAIL — missing figure artifact $json" >&2
        exit 1
    fi
    if ! python3 -m json.tool "$json" > /dev/null; then
        echo "ci: FAIL — unparsable figure artifact $json" >&2
        exit 1
    fi
done
echo "all figure JSON artifacts parse"

echo "==> resilience smoke: injected chaos must yield a partial, annotated report"
# One panicking cell and one timing-out cell (both in the --quick set): the
# sweep must finish every other cell, name both casualties in the JSON
# artifact, and exit with the PARTIAL code (3).
fig10=(cargo run --release -q -p helios-bench --bin fig10 -- --quick --jobs 2)
set +e
HELIOS_SWEEP_CHAOS="bitcount/Helios=panic,fft/NoFusion=timeout" \
HELIOS_BENCH_STABLE=1 "${fig10[@]}" > /dev/null 2> /dev/null
chaos_rc=$?
set -e
if [ "$chaos_rc" -ne 3 ]; then
    echo "ci: FAIL — chaos sweep exited $chaos_rc, expected 3 (partial)" >&2
    exit 1
fi
grep -q '"bitcount/Helios": "failed' "$scratch/fig10.json" || {
    echo "ci: FAIL — chaos report missing quarantined panic cell" >&2
    exit 1
}
grep -q '"fft/NoFusion": "timed out' "$scratch/fig10.json" || {
    echo "ci: FAIL — chaos report missing timed-out cell" >&2
    exit 1
}
echo "chaos sweep: partial exit + both casualties annotated"

echo "==> resilience smoke: interrupted sweep resumes byte-identically"
# Reference uninterrupted run, then a run stopped after 17 cells (the
# deterministic stand-in for kill -9), then a --resume run; stdout and
# BENCH_sweep.json must match the reference byte for byte.
export HELIOS_BENCH_STABLE=1
rm -f "$scratch/fig10.ckpt.jsonl"
"${fig10[@]}" > "$scratch/ref.out" 2> /dev/null
cp BENCH_sweep.json "$scratch/ref_bench.json"
rm -f "$scratch/fig10.ckpt.jsonl"
set +e
HELIOS_SWEEP_STOP_AFTER=17 "${fig10[@]}" > /dev/null 2> /dev/null
int_rc=$?
set -e
if [ "$int_rc" -ne 130 ]; then
    echo "ci: FAIL — interrupted sweep exited $int_rc, expected 130" >&2
    exit 1
fi
"${fig10[@]}" --resume > "$scratch/resumed.out" 2> /dev/null
cmp "$scratch/ref.out" "$scratch/resumed.out" || {
    echo "ci: FAIL — resumed sweep stdout differs from uninterrupted run" >&2
    exit 1
}
cmp "$scratch/ref_bench.json" BENCH_sweep.json || {
    echo "ci: FAIL — resumed BENCH_sweep.json differs from uninterrupted run" >&2
    exit 1
}
unset HELIOS_BENCH_STABLE
# The stabilized (zeroed wall-clock) record is only for the diff above; the
# timed record archived earlier remains the throughput trajectory.
rm -f BENCH_sweep.json
echo "resume smoke: interrupted at 17/48, resumed byte-identically"

echo "==> resilience smoke: sweep-executor chaos soak"
cargo run --release -q -p helios-bench --bin soak -- --sweep-chaos --quick --jobs 2

echo "==> trace store smoke: cold vs warm vs live fig10 --quick"
# A sweep through a cold store must record every workload; the same sweep
# against the warm store must record nothing (pure hits, traces streamed
# from disk) and produce byte-identical stdout; and both must match the
# store-less (live in-memory) reference captured above.
tstore="$scratch/traces"
rm -rf "$tstore"
export HELIOS_BENCH_STABLE=1
HELIOS_TRACE_DIR="$tstore" "${fig10[@]}" > "$scratch/cold.out" 2> "$scratch/cold.err"
HELIOS_TRACE_DIR="$tstore" "${fig10[@]}" > "$scratch/warm.out" 2> "$scratch/warm.err"
unset HELIOS_BENCH_STABLE
rm -f BENCH_sweep.json
grep -q "trace store: 0 recorded" "$scratch/warm.err" || {
    echo "ci: FAIL — warm trace store still recorded (want pure hits):" >&2
    grep "trace store:" "$scratch/warm.err" >&2 || true
    exit 1
}
cmp "$scratch/cold.out" "$scratch/warm.out" || {
    echo "ci: FAIL — warm-store fig10 stdout differs from cold-store run" >&2
    exit 1
}
cmp "$scratch/ref.out" "$scratch/cold.out" || {
    echo "ci: FAIL — store-backed fig10 stdout differs from live (store-less) run" >&2
    exit 1
}
echo "trace store: cold/warm/live stdout byte-identical, warm run recorded nothing"

echo "==> trace store smoke: bit-flip detection"
trace=(cargo run --release -q -p helios-bench --bin trace --)
entry=$(ls "$tstore"/*.htrc2 | head -1)
python3 - "$entry" <<'PY'
import sys
p = sys.argv[1]
b = bytearray(open(p, "rb").read())
b[len(b) // 2] ^= 0x40
open(p, "wb").write(b)
PY
set +e
"${trace[@]}" verify --store "$tstore" > "$scratch/verify.out"
verify_rc=$?
set -e
if [ "$verify_rc" -eq 0 ]; then
    echo "ci: FAIL — trace verify missed a deliberately flipped block" >&2
    exit 1
fi
grep -q "BAD" "$scratch/verify.out" || {
    echo "ci: FAIL — trace verify exited non-zero but named no bad file" >&2
    exit 1
}
echo "trace verify: flipped block detected (exit $verify_rc)"

# Size smoke: warn — never fail — when the quick corpus regresses >10% in
# bytes/µ-op against the committed full-corpus record (same rationale as
# the throughput warning above: a red build on a size number trains people
# to ignore red builds; the committed BENCH_trace.json is the trajectory).
"${trace[@]}" gc --store "$tstore" > /dev/null
"${trace[@]}" record --store "$tstore" > /dev/null 2> /dev/null
if [ -f results/BENCH_trace.json ]; then
    "${trace[@]}" info --store "$tstore" --json > "$scratch/trace_info.json"
    python3 - "$scratch/trace_info.json" <<'PY' || true
import json, sys
base = json.load(open("results/BENCH_trace.json"))["bytes_per_uop"]
info = json.load(open(sys.argv[1]))
row = dict(info["rows"])
now = float(row["bytes/µ-op"])
if now > 1.10 * base:
    print(f"ci: WARNING — trace corpus {now:.3f} B/µ-op is >10% above the "
          f"committed {base:.3f} (non-blocking)")
else:
    print(f"size smoke: {now:.3f} B/µ-op vs committed {base:.3f} — ok")
PY
else
    echo "size smoke: no committed results/BENCH_trace.json baseline; skipping comparison"
fi

echo "==> Konata trace smoke"
"${trace[@]}" dump crc32 --konata "$scratch/crc32.kanata" --limit 20000
head -c 7 "$scratch/crc32.kanata" | grep -q "Kanata" || {
    echo "ci: FAIL — Konata trace missing header" >&2
    exit 1
}

echo "==> server smoke: sweepd + fig10 --quick --server"
# Start the daemon on an ephemeral port, run fig10 through it twice (cold
# cache simulates all 48 cells, warm cache must re-simulate zero), check
# stdout and the fig10.json artifact stay byte-identical to the local
# stable reference, then shut the daemon down with SIGINT (must exit 0).
cargo build --release -q -p helios-bench --bin serve
serve_log="$scratch/serve.log"
rm -rf "$scratch/sweepd"
target/release/serve --addr 127.0.0.1:0 --cache-dir "$scratch/sweepd" --jobs 2 \
    2> "$serve_log" &
serve_pid=$!
url=""
for _ in $(seq 1 100); do
    url=$(sed -n 's/^sweepd: listening on //p' "$serve_log")
    [ -n "$url" ] && break
    sleep 0.1
done
[ -n "$url" ] || {
    echo "ci: FAIL — sweepd never announced its listening address" >&2
    exit 1
}
cp "$scratch/fig10.json" "$scratch/ref_fig10.json"
export HELIOS_BENCH_STABLE=1
"${fig10[@]}" --server "$url" > "$scratch/server_cold.out" 2> "$scratch/server_cold.err"
"${fig10[@]}" --server "$url" > "$scratch/server_warm.out" 2> "$scratch/server_warm.err"
unset HELIOS_BENCH_STABLE
rm -f BENCH_sweep.json
cmp "$scratch/ref.out" "$scratch/server_cold.out" || {
    echo "ci: FAIL — fig10 --server stdout differs from the local run" >&2
    exit 1
}
cmp "$scratch/ref.out" "$scratch/server_warm.out" || {
    echo "ci: FAIL — warm-cache fig10 --server stdout differs from the local run" >&2
    exit 1
}
cmp "$scratch/ref_fig10.json" "$scratch/fig10.json" || {
    echo "ci: FAIL — fig10 --server JSON artifact differs from the local run" >&2
    exit 1
}
grep -q "server cache: 0 hits, 48 simulated" "$scratch/server_cold.err" || {
    echo "ci: FAIL — cold server run did not report 48 simulated cells:" >&2
    grep "server cache:" "$scratch/server_cold.err" >&2 || true
    exit 1
}
grep -q "server cache: 48 hits, 0 simulated" "$scratch/server_warm.err" || {
    echo "ci: FAIL — warm server run re-simulated cells (want pure cache hits):" >&2
    grep "server cache:" "$scratch/server_warm.err" >&2 || true
    exit 1
}
kill -INT "$serve_pid"
set +e
wait "$serve_pid"
serve_rc=$?
set -e
if [ "$serve_rc" -ne 0 ]; then
    echo "ci: FAIL — sweepd exited $serve_rc on SIGINT, expected clean 0" >&2
    exit 1
fi
grep -q "shut down cleanly" "$serve_log" || {
    echo "ci: FAIL — sweepd exited 0 but never logged a clean shutdown" >&2
    exit 1
}
echo "server smoke: cold 48 simulated, warm 48 cached, stdout+artifact byte-identical, clean shutdown"

echo "ci: all green"
