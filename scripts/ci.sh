#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from anywhere; exits non-zero on the
# first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> sweep smoke: fig10 --quick --jobs 2 (timed)"
sweep_start=$(date +%s)
cargo run --release -q -p helios-bench --bin fig10 -- --quick --jobs 2 > /dev/null
sweep_end=$(date +%s)
echo "sweep smoke: $((sweep_end - sweep_start))s wall"
# Archive the throughput record so simulator-performance regressions show up
# in the trajectory (results/BENCH_sweep_quick.json is the smoke run;
# results/BENCH_sweep.json is the committed full-sweep record).
mkdir -p results
mv BENCH_sweep.json results/BENCH_sweep_quick.json
cat results/BENCH_sweep_quick.json

echo "ci: all green"
