#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from anywhere; exits non-zero on the
# first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "ci: all green"
