#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, then a figure-pipeline smoke that checks
# every per-figure JSON artifact parses and archives one Konata trace.
# Run from anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> sweep smoke: fig10 --quick --jobs 2 (timed)"
# Quick-run artifacts go to a scratch dir so CI never clobbers the committed
# full-suite artifacts under results/.
scratch="results/ci-quick"
rm -rf "$scratch"
mkdir -p "$scratch"
export HELIOS_RESULTS_DIR="$scratch"
sweep_start=$(date +%s)
cargo run --release -q -p helios-bench --bin fig10 -- --quick --jobs 2 > /dev/null
sweep_end=$(date +%s)
echo "sweep smoke: $((sweep_end - sweep_start))s wall"
# Archive the throughput record so simulator-performance regressions show up
# in the trajectory (results/BENCH_sweep_quick.json is the smoke run;
# results/BENCH_sweep.json is the committed full-sweep record).
mkdir -p results
mv BENCH_sweep.json results/BENCH_sweep_quick.json
cat results/BENCH_sweep_quick.json

echo "==> fuzz smoke: fixed-seed differential campaign + corpus replay"
cargo run --release -q -p helios-bench --bin fuzz -- --seed 1 --iters 500 --quiet
cargo run --release -q -p helios-bench --bin fuzz -- --replay tests/corpus

echo "==> figure smoke: every report binary on the --quick subset"
for bin in fig02 fig03 fig04 fig05 fig08 fig09 table1 table2 table3 ablation; do
    echo "  -> $bin"
    cargo run --release -q -p helios-bench --bin "$bin" -- --quick --jobs 2 > /dev/null
done

echo "==> validating per-figure JSON artifacts"
for id in fig02 fig03 fig04 fig05 fig08 fig09 fig10 table1 table2 table3 ablation fuzz; do
    json="$scratch/$id.json"
    if [ ! -f "$json" ]; then
        echo "ci: FAIL — missing figure artifact $json" >&2
        exit 1
    fi
    if ! python3 -m json.tool "$json" > /dev/null; then
        echo "ci: FAIL — unparsable figure artifact $json" >&2
        exit 1
    fi
done
echo "all figure JSON artifacts parse"

echo "==> Konata trace smoke"
cargo run --release -q -p helios-bench --bin trace -- crc32 --konata "$scratch/crc32.kanata" --limit 20000
head -c 7 "$scratch/crc32.kanata" | grep -q "Kanata" || {
    echo "ci: FAIL — Konata trace missing header" >&2
    exit 1
}

echo "ci: all green"
