//! Running (workload × configuration) simulations.

use helios_core::FusionMode;
use helios_uarch::{PipeConfig, Pipeline, SimStats};
use helios_workloads::Workload;
use std::collections::BTreeMap;

/// One simulation outcome.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Benchmark name.
    pub workload: &'static str,
    /// Fusion configuration simulated.
    pub mode: FusionMode,
    /// Collected statistics.
    pub stats: SimStats,
}

/// Simulates `w` under fusion mode `mode` with the default Table II core.
pub fn run_workload(w: &Workload, mode: FusionMode) -> SimStats {
    run_workload_with(w, PipeConfig::with_fusion(mode))
}

/// Simulates `w` under an explicit pipeline configuration.
pub fn run_workload_with(w: &Workload, cfg: PipeConfig) -> SimStats {
    let mut pipe = Pipeline::new(cfg, w.stream());
    if let Err(e) = pipe.try_run(w.fuel * 20) {
        // Any abnormal outcome — deadlock, blown cycle budget, violated
        // invariant — would silently corrupt the figure this run feeds, so
        // abort with the structured report instead.
        panic!("{}/{}: {e}", w.name, pipe.config().fusion.name());
    }
    pipe.stats().clone()
}

/// Results of a full (workloads × modes) sweep, indexable by both axes.
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    results: Vec<RunResult>,
}

impl Sweep {
    /// All results, in execution order (workload-major).
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// The result for one (workload, mode) cell.
    pub fn get(&self, workload: &str, mode: FusionMode) -> Option<&SimStats> {
        self.results
            .iter()
            .find(|r| r.workload == workload && r.mode == mode)
            .map(|r| &r.stats)
    }

    /// Workload names, in sweep order.
    pub fn workloads(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for r in &self.results {
            if !seen.contains(&r.workload) {
                seen.push(r.workload);
            }
        }
        seen
    }

    /// Per-workload IPC of `mode` normalized to `baseline`, plus the
    /// geometric mean, in sweep order.
    pub fn normalized_ipc(&self, mode: FusionMode, baseline: FusionMode) -> (BTreeMap<&'static str, f64>, f64) {
        let mut out = BTreeMap::new();
        let mut vals = Vec::new();
        for w in self.workloads() {
            if let (Some(m), Some(b)) = (self.get(w, mode), self.get(w, baseline)) {
                let r = m.ipc() / b.ipc();
                out.insert(w, r);
                vals.push(r);
            }
        }
        (out, crate::metrics::geomean(&vals))
    }
}

/// Runs every (workload × mode) combination, reporting progress on stderr.
pub fn run_sweep(workloads: &[Workload], modes: &[FusionMode]) -> Sweep {
    let mut sweep = Sweep::default();
    let total = workloads.len() * modes.len();
    let mut done = 0usize;
    for w in workloads {
        for &mode in modes {
            let stats = run_workload(w, mode);
            sweep.results.push(RunResult {
                workload: w.name,
                mode,
                stats,
            });
            done += 1;
            eprint!("\r[{done}/{total}] {:<18} {:<14}", w.name, mode.name());
        }
    }
    eprintln!();
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_indexing() {
        let ws = vec![helios_workloads::workload("crc32").unwrap()];
        let modes = [FusionMode::NoFusion, FusionMode::CsfSbr];
        let s = run_sweep(&ws, &modes);
        assert_eq!(s.results().len(), 2);
        assert!(s.get("crc32", FusionMode::NoFusion).is_some());
        assert!(s.get("crc32", FusionMode::Helios).is_none());
        let (per, geo) = s.normalized_ipc(FusionMode::CsfSbr, FusionMode::NoFusion);
        assert_eq!(per.len(), 1);
        assert!(geo > 0.5 && geo < 2.0);
    }
}
