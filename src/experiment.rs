//! Running (workload × configuration) simulations: the parallel,
//! trace-reusing sweep engine.
//!
//! Every figure and table is driven by [`run_sweep`]. Two properties keep it
//! fast without changing any result:
//!
//! * **Record once, replay many** — each workload's functional execution is
//!   recorded once into a shared [`RecordedTrace`]; all fusion modes replay
//!   the same buffer instead of re-running the emulator per cell.
//! * **Parallel cells** — (workload × mode) cells are independent
//!   simulations, executed by a `std::thread::scope` worker pool. Results
//!   are stored by cell index, so the sweep order is workload-major and
//!   byte-identical regardless of `jobs` or completion order.

use helios_core::FusionMode;
use helios_emu::{RecordedTrace, UopSource};
use helios_uarch::{ObsOpts, Observer, PipeConfig, Pipeline, SimStats, StatsRegistry};
use helios_workloads::Workload;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One simulation outcome.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Benchmark name.
    pub workload: &'static str,
    /// Fusion configuration simulated.
    pub mode: FusionMode,
    /// Collected statistics.
    pub stats: SimStats,
}

/// A fully-described single simulation: workload, pipeline configuration,
/// optional pre-recorded trace to replay, and observability options — the
/// one entrypoint behind every figure/table cell.
///
/// # Examples
///
/// ```
/// use helios::{FusionMode, ObsOpts, SimRequest};
///
/// let w = helios_workloads::workload("crc32").expect("registered");
/// let run = SimRequest::mode(&w, FusionMode::Helios)
///     .observing(ObsOpts::metrics())
///     .run();
/// let obs = run.observer.as_ref().expect("observer was attached");
/// assert_eq!(obs.commit_events(), run.stats.uops);
/// ```
#[derive(Clone, Debug)]
pub struct SimRequest<'a> {
    /// The workload to simulate.
    pub workload: &'a Workload,
    /// The pipeline configuration (fusion mode, structure sizes, …).
    pub cfg: PipeConfig,
    /// Replay this recorded trace instead of re-emulating the program live.
    /// Statistics are identical either way — the pipeline consumes the same
    /// retired-µ-op sequence.
    pub trace: Option<&'a RecordedTrace>,
    /// Observability: [`ObsOpts::off`] (default, zero-cost),
    /// [`ObsOpts::metrics`], or [`ObsOpts::timeline`].
    pub obs: ObsOpts,
}

impl<'a> SimRequest<'a> {
    /// A request with an explicit configuration, no trace, observability off.
    pub fn new(workload: &'a Workload, cfg: PipeConfig) -> SimRequest<'a> {
        SimRequest {
            workload,
            cfg,
            trace: None,
            obs: ObsOpts::off(),
        }
    }

    /// A request for the default Table II core under fusion mode `mode`.
    pub fn mode(workload: &'a Workload, mode: FusionMode) -> SimRequest<'a> {
        SimRequest::new(workload, PipeConfig::with_fusion(mode))
    }

    /// Replays `trace` instead of re-emulating. For repeated runs of one
    /// workload prefer [`Workload::recorded`] + this, which share a buffer.
    pub fn replaying(mut self, trace: &'a RecordedTrace) -> SimRequest<'a> {
        self.trace = Some(trace);
        self
    }

    /// Sets the observability options.
    pub fn observing(mut self, obs: ObsOpts) -> SimRequest<'a> {
        self.obs = obs;
        self
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    ///
    /// On any abnormal outcome — deadlock, blown cycle budget, violated
    /// invariant — naming the (workload, mode) cell. An abnormal run would
    /// silently corrupt the figure it feeds, so there is no partial result.
    pub fn run(self) -> SimRun {
        let fuel = self.workload.fuel * 20;
        match self.trace {
            Some(t) => drive(
                Pipeline::new(self.cfg, t.replay()),
                fuel,
                self.workload.name,
                self.obs,
            ),
            None => drive(
                Pipeline::new(self.cfg, self.workload.stream()),
                fuel,
                self.workload.name,
                self.obs,
            ),
        }
    }
}

/// Drives one configured pipeline to completion (see [`SimRequest::run`]).
fn drive<I: UopSource>(mut pipe: Pipeline<I>, fuel: u64, name: &str, obs: ObsOpts) -> SimRun {
    pipe.attach_observer(obs);
    if let Err(e) = pipe.try_run(fuel) {
        panic!("{name}/{}: {e}", pipe.config().fusion.name());
    }
    SimRun {
        stats: pipe.stats().clone(),
        observer: pipe.take_observer(),
    }
}

/// What a [`SimRequest`] produces: the statistics, plus the observer when
/// one was attached.
#[derive(Debug)]
pub struct SimRun {
    /// Collected statistics (always present).
    pub stats: SimStats,
    /// The event observer, when the request enabled observability.
    pub observer: Option<Box<Observer>>,
}

impl SimRun {
    /// The full self-describing stats registry: every [`SimStats`] counter
    /// plus, when an observer ran, its event counters and histograms.
    pub fn registry(&self) -> StatsRegistry {
        let mut reg = self.stats.registry();
        if let Some(o) = &self.observer {
            o.export(&mut reg);
        }
        reg
    }
}

/// Results of a full (workloads × modes) sweep, indexable by both axes.
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    results: Vec<RunResult>,
    /// (workload, mode) → index into `results`. `get` is called in nested
    /// loops by every figure binary; the linear scan it replaces was O(n)
    /// per lookup over 192 cells.
    index: HashMap<(&'static str, FusionMode), usize>,
    /// Workload names in sweep (workload-major execution) order.
    order: Vec<&'static str>,
}

impl Sweep {
    /// Builds the indexed sweep from results in execution order.
    fn from_results(results: Vec<RunResult>) -> Sweep {
        let mut index = HashMap::with_capacity(results.len());
        let mut order = Vec::new();
        for (i, r) in results.iter().enumerate() {
            if index.insert((r.workload, r.mode), i).is_none() && !order.contains(&r.workload) {
                order.push(r.workload);
            }
        }
        Sweep {
            results,
            index,
            order,
        }
    }

    /// All results, in execution order (workload-major).
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// The result for one (workload, mode) cell.
    pub fn get(&self, workload: &str, mode: FusionMode) -> Option<&SimStats> {
        self.index
            .get(&(workload, mode))
            .map(|&i| &self.results[i].stats)
    }

    /// Workload names, in sweep order.
    pub fn workloads(&self) -> Vec<&'static str> {
        self.order.clone()
    }

    /// Per-workload IPC of `mode` normalized to `baseline`, plus the
    /// geometric mean, in sweep order.
    pub fn normalized_ipc(&self, mode: FusionMode, baseline: FusionMode) -> (BTreeMap<&'static str, f64>, f64) {
        let mut out = BTreeMap::new();
        let mut vals = Vec::new();
        for w in self.workloads() {
            if let (Some(m), Some(b)) = (self.get(w, mode), self.get(w, baseline)) {
                let r = m.ipc() / b.ipc();
                out.insert(w, r);
                vals.push(r);
            }
        }
        (out, crate::metrics::geomean(&vals))
    }
}

/// Worker count used when the caller does not specify one: every core.
/// Results are independent of the worker count, so defaulting to full
/// parallelism is safe.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Mutex-guarded progress reporter: a single writer keeps the `\r` status
/// line on stderr coherent under concurrent workers, and completion prints
/// elapsed wall-clock time. Used by the sweep engine and by every census /
/// scan loop in the figure binaries (raw `eprint!("\r…")` from concurrent
/// contexts interleaves).
pub struct Progress {
    state: Mutex<(usize, Instant)>, // (items done, start)
    total: usize,
}

impl Progress {
    /// A reporter expecting `total` items.
    pub fn new(total: usize) -> Progress {
        Progress {
            state: Mutex::new((0, Instant::now())),
            total,
        }
    }

    /// Marks one item finished and redraws the status line
    /// (`[done/total] label detail`).
    pub fn item_done(&self, label: &str, detail: &str) {
        let mut s = self.state.lock().unwrap();
        s.0 += 1;
        eprint!("\r[{}/{}] {:<18} {:<14}", s.0, self.total, label, detail);
    }

    /// Overwrites the status line with `<what> complete in <elapsed>s`.
    pub fn finish(&self, what: &str) {
        let s = self.state.lock().unwrap();
        eprintln!(
            "\r[{}/{}] {what} complete in {:.1}s{:24}",
            s.0,
            self.total,
            s.1.elapsed().as_secs_f64(),
            ""
        );
    }
}

/// Extracts a readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// First-failure slot shared by a worker pool: records one error message and
/// tells the other workers to stop picking up new work.
struct FailFast {
    stop: AtomicBool,
    message: Mutex<Option<String>>,
}

impl FailFast {
    fn new() -> FailFast {
        FailFast {
            stop: AtomicBool::new(false),
            message: Mutex::new(None),
        }
    }

    fn record(&self, msg: String) {
        let mut m = self.message.lock().unwrap();
        if m.is_none() {
            *m = Some(msg);
        }
        self.stop.store(true, Ordering::Relaxed);
    }

    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Propagates the recorded failure, if any.
    fn check(self) {
        if let Some(msg) = self.message.into_inner().unwrap() {
            panic!("{msg}");
        }
    }
}

/// Per-workload trace cache for one sweep. A workload's trace is recorded by
/// the first worker that needs it, shared (`Arc` internals) by every
/// concurrent cell of that workload, and dropped as soon as its last cell
/// completes — so peak memory is O(jobs) traces, not O(workloads), while
/// each workload is still emulated exactly once.
struct TraceCache {
    slots: Vec<Mutex<Option<RecordedTrace>>>,
    /// Cells still outstanding per workload; reaching zero frees the slot.
    remaining: Vec<AtomicUsize>,
}

impl TraceCache {
    fn new(workloads: usize, modes: usize) -> TraceCache {
        TraceCache {
            slots: (0..workloads).map(|_| Mutex::new(None)).collect(),
            remaining: (0..workloads).map(|_| AtomicUsize::new(modes)).collect(),
        }
    }

    /// The trace for workload `wi`, recording it on first demand. Concurrent
    /// requests for the same workload wait on its slot rather than
    /// double-recording.
    fn get(&self, wi: usize, w: &Workload) -> Result<RecordedTrace, helios_emu::EmuError> {
        let mut slot = self.slots[wi].lock().unwrap();
        if let Some(t) = &*slot {
            return Ok(t.clone());
        }
        let t = w.recorded()?;
        *slot = Some(t.clone());
        Ok(t)
    }

    /// Marks one of workload `wi`'s cells finished, freeing the recording
    /// after the last one.
    fn cell_finished(&self, wi: usize) {
        if self.remaining[wi].fetch_sub(1, Ordering::AcqRel) == 1 {
            self.slots[wi].lock().unwrap().take();
        }
    }
}

/// Runs every (workload × mode) combination on [`default_jobs`] worker
/// threads, reporting progress on stderr. Results are deterministic and
/// workload-major regardless of the worker count.
pub fn run_sweep(workloads: &[Workload], modes: &[FusionMode]) -> Sweep {
    run_sweep_jobs(workloads, modes, default_jobs())
}

/// [`run_sweep`] with an explicit worker count (the `--jobs` flag of the
/// figure binaries). `jobs` is clamped to at least 1.
///
/// # Panics
///
/// If any cell's simulation fails, the panic names the failing
/// (workload, mode) cell.
pub fn run_sweep_jobs(workloads: &[Workload], modes: &[FusionMode], jobs: usize) -> Sweep {
    let total = workloads.len() * modes.len();
    let jobs = jobs.clamp(1, total.max(1));
    let reporter = Progress::new(total);

    // Workers pull the next cell index from a shared counter and store the
    // result by index, so the output order is workload-major no matter which
    // worker finishes when. Each workload's trace is recorded by the first
    // worker to reach it and freed after its last cell (see [`TraceCache`]).
    let traces = TraceCache::new(workloads.len(), modes.len());
    let cells: Vec<Mutex<Option<SimStats>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let fail = FailFast::new();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                if fail.stopping() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let (wi, w, mode) = (i / modes.len(), &workloads[i / modes.len()], modes[i % modes.len()]);
                let trace = match traces.get(wi, w) {
                    Ok(t) => t,
                    Err(e) => {
                        fail.record(format!("recording {}: {e}", w.name));
                        break;
                    }
                };
                match catch_unwind(AssertUnwindSafe(|| {
                    SimRequest::mode(w, mode).replaying(&trace).run().stats
                })) {
                    Ok(stats) => {
                        *cells[i].lock().unwrap() = Some(stats);
                        drop(trace);
                        traces.cell_finished(wi);
                        reporter.item_done(w.name, mode.name());
                    }
                    Err(p) => {
                        fail.record(format!(
                            "sweep cell {}/{} failed: {}",
                            w.name,
                            mode.name(),
                            panic_message(&*p)
                        ));
                        break;
                    }
                }
            });
        }
    });
    fail.check();
    reporter.finish("sweep");

    let results = cells
        .into_iter()
        .enumerate()
        .map(|(i, c)| RunResult {
            workload: workloads[i / modes.len()].name,
            mode: modes[i % modes.len()],
            stats: c.into_inner().unwrap().expect("all cells filled"),
        })
        .collect();
    Sweep::from_results(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_indexing() {
        let ws = vec![helios_workloads::workload("crc32").unwrap()];
        let modes = [FusionMode::NoFusion, FusionMode::CsfSbr];
        let s = run_sweep_jobs(&ws, &modes, 1);
        assert_eq!(s.results().len(), 2);
        assert!(s.get("crc32", FusionMode::NoFusion).is_some());
        assert!(s.get("crc32", FusionMode::Helios).is_none());
        let (per, geo) = s.normalized_ipc(FusionMode::CsfSbr, FusionMode::NoFusion);
        assert_eq!(per.len(), 1);
        assert!(geo > 0.5 && geo < 2.0);
    }

    #[test]
    fn sweep_order_is_workload_major_input_order() {
        // Deliberately not alphabetical: the sweep must preserve the caller's
        // workload order, not sort it.
        let ws = vec![
            helios_workloads::workload("susan").unwrap(),
            helios_workloads::workload("crc32").unwrap(),
        ];
        let modes = [FusionMode::NoFusion, FusionMode::CsfSbr];
        let s = run_sweep_jobs(&ws, &modes, 2);
        assert_eq!(s.workloads(), vec!["susan", "crc32"]);
        let cells: Vec<(&str, FusionMode)> =
            s.results().iter().map(|r| (r.workload, r.mode)).collect();
        assert_eq!(
            cells,
            vec![
                ("susan", FusionMode::NoFusion),
                ("susan", FusionMode::CsfSbr),
                ("crc32", FusionMode::NoFusion),
                ("crc32", FusionMode::CsfSbr),
            ]
        );
    }

    #[test]
    fn sim_request_is_deterministic() {
        // Two independent runs of the same request agree exactly, and
        // observability defaults to off.
        let w = helios_workloads::workload("crc32").unwrap();
        let a = SimRequest::mode(&w, FusionMode::CsfSbr).run();
        let b = SimRequest::mode(&w, FusionMode::CsfSbr).run();
        assert_eq!((a.stats.cycles, a.stats.uops), (b.stats.cycles, b.stats.uops));
        assert!(a.observer.is_none(), "observability defaults to off");
    }

    #[test]
    fn observed_run_matches_unobserved_timing() {
        // Metrics-level observation must not perturb simulated timing.
        let w = helios_workloads::workload("crc32").unwrap();
        let plain = SimRequest::mode(&w, FusionMode::Helios).run();
        let observed = SimRequest::mode(&w, FusionMode::Helios)
            .observing(ObsOpts::metrics())
            .run();
        assert_eq!(plain.stats.cycles, observed.stats.cycles);
        assert_eq!(plain.stats.uops, observed.stats.uops);
        let reg = observed.registry();
        assert!(reg.get("obs.commit_events").is_some(), "observer exported");
        assert!(plain.registry().get("obs.commit_events").is_none());
    }

    #[test]
    fn failing_cell_is_named() {
        // A starved workload makes recording fail loudly with the name.
        let mut w = helios_workloads::workload("crc32").unwrap();
        w.fuel = 10;
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_sweep_jobs(&[w], &[FusionMode::NoFusion], 2)
        }))
        .unwrap_err();
        let msg = panic_message(&*err);
        assert!(msg.contains("crc32"), "panic names the workload: {msg}");
    }
}
