//! Running (workload × configuration) simulations: the parallel,
//! trace-reusing, fault-isolating sweep engine.
//!
//! Every figure and table is driven by [`run_sweep_opts`] (or its thin
//! wrappers [`run_sweep`] / [`run_sweep_jobs`]). Two properties keep it fast
//! without changing any result:
//!
//! * **Record once, replay many** — each workload's functional execution is
//!   recorded once into a shared [`Trace`]; all fusion modes replay the
//!   same recording instead of re-running the emulator per cell. With a
//!   [`TraceStore`] attached the recording is *persistent* and
//!   content-addressed: later sweeps (and concurrent processes) replay it
//!   block-at-a-time straight off disk without recording anything.
//! * **Parallel cells** — (workload × mode) cells are independent
//!   simulations, executed by a `std::thread::scope` worker pool. Results
//!   are stored by cell index, so the sweep order is workload-major and
//!   byte-identical regardless of `jobs` or completion order.
//!
//! And two more keep a long campaign *alive* (DESIGN.md §14):
//!
//! * **Per-cell fault isolation** — a panicking, deadlocking, or hung cell
//!   becomes a [`CellOutcome`] for that cell (after bounded retry with
//!   capped backoff), never an abort of the whole sweep. Healthy cells
//!   always complete; the [`Sweep`] carries the quarantined failures so
//!   reports can annotate them and exit codes can distinguish a partial
//!   sweep from a complete one.
//! * **Crash-safe checkpointing** — with a [`Checkpoint`] attached, every
//!   finished cell is appended to a JSONL journal and fsynced before the
//!   sweep moves on, keyed by `(workload, PipeConfig::digest)`. A killed
//!   sweep resumed with [`Checkpoint::resume`] replays finished cells from
//!   the journal and only simulates the rest; the merged result is
//!   byte-identical to an uninterrupted run.

use helios_core::FusionMode;
use helios_emu::{StoreStats, Trace, TraceStore, UopSource};
use helios_uarch::{
    CellChaos, CellFault, ObsOpts, Observer, PipeConfig, Pipeline, SimError, SimStats,
    StatsRegistry,
};
use helios_workloads::Workload;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One simulation outcome.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Benchmark name.
    pub workload: &'static str,
    /// Fusion configuration simulated.
    pub mode: FusionMode,
    /// Collected statistics.
    pub stats: SimStats,
}

/// A fully-described single simulation: workload, pipeline configuration,
/// optional pre-recorded trace to replay, optional wall-clock deadline, and
/// observability options — the one entrypoint behind every figure/table
/// cell.
///
/// # Examples
///
/// ```
/// use helios::{FusionMode, ObsOpts, SimRequest};
///
/// let w = helios_workloads::workload("crc32").expect("registered");
/// let run = SimRequest::mode(&w, FusionMode::Helios)
///     .observing(ObsOpts::metrics())
///     .run();
/// let obs = run.observer.as_ref().expect("observer was attached");
/// assert_eq!(obs.commit_events(), run.stats.uops);
/// ```
#[derive(Clone, Debug)]
pub struct SimRequest<'a> {
    /// The workload to simulate.
    pub workload: &'a Workload,
    /// The pipeline configuration (fusion mode, structure sizes, …).
    pub cfg: PipeConfig,
    /// Replay this trace (in-memory or streamed from a [`TraceStore`] file)
    /// instead of re-emulating the program live. Statistics are identical
    /// either way — the pipeline consumes the same retired-µ-op sequence.
    pub trace: Option<&'a Trace>,
    /// Observability: [`ObsOpts::off`] (default, zero-cost),
    /// [`ObsOpts::metrics`], or [`ObsOpts::timeline`].
    pub obs: ObsOpts,
    /// Abort with [`SimError::WallClockTimeout`] if simulation passes this
    /// wall-clock instant (`None` = no deadline). Wall-clock state never
    /// feeds the timing model, so a deadline that does not fire changes
    /// nothing about the result.
    pub deadline: Option<Instant>,
    /// Cycle budget multiplier: the run may take up to
    /// `workload.fuel * fuel_factor` cycles before
    /// [`SimError::CycleLimit`]. The default (20) means "an IPC below 0.05
    /// is a model bug, not a slow workload".
    pub fuel_factor: u64,
    /// Attach the lockstep architectural checker: every committed µ-op is
    /// compared against a second emulation of the same workload, and any
    /// divergence becomes [`SimError::InvariantViolation`]. Costs one extra
    /// functional execution, so it is off by default.
    pub checked: bool,
}

impl<'a> SimRequest<'a> {
    /// A request with an explicit configuration, no trace, observability off.
    pub fn new(workload: &'a Workload, cfg: PipeConfig) -> SimRequest<'a> {
        SimRequest {
            workload,
            cfg,
            trace: None,
            obs: ObsOpts::off(),
            deadline: None,
            fuel_factor: 20,
            checked: false,
        }
    }

    /// A request for the default Table II core under fusion mode `mode`.
    pub fn mode(workload: &'a Workload, mode: FusionMode) -> SimRequest<'a> {
        SimRequest::new(workload, PipeConfig::with_fusion(mode))
    }

    /// Replays `trace` instead of re-emulating. For repeated runs of one
    /// workload prefer [`Workload::trace`] / [`Workload::stored`] + this,
    /// which share one recording across runs.
    pub fn replaying(mut self, trace: &'a Trace) -> SimRequest<'a> {
        self.trace = Some(trace);
        self
    }

    /// Sets the observability options.
    pub fn observing(mut self, obs: ObsOpts) -> SimRequest<'a> {
        self.obs = obs;
        self
    }

    /// Sets the wall-clock deadline (see [`SimRequest::deadline`]).
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> SimRequest<'a> {
        self.deadline = deadline;
        self
    }

    /// Sets the cycle-budget multiplier (see [`SimRequest::fuel_factor`]).
    pub fn budget(mut self, fuel_factor: u64) -> SimRequest<'a> {
        self.fuel_factor = fuel_factor;
        self
    }

    /// Attaches the lockstep checker (see [`SimRequest::checked`]).
    pub fn checked(mut self) -> SimRequest<'a> {
        self.checked = true;
        self
    }

    /// Runs the simulation to completion, reporting abnormal outcomes —
    /// deadlock, blown cycle budget, expired deadline, violated invariant —
    /// as a structured [`SimError`] instead of panicking. This is what the
    /// resilient sweep executor calls; an error here becomes a quarantined
    /// [`CellOutcome`], not a dead campaign.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]; statistics are finalized but discarded, because a
    /// partial result would silently corrupt the figure it feeds.
    pub fn try_run(self) -> Result<SimRun, SimError> {
        let fuel = self.workload.fuel * self.fuel_factor;
        let oracle = self.checked.then(|| self.workload.stream());
        match self.trace {
            Some(t) => {
                let mut pipe = Pipeline::new(self.cfg, t.replay());
                if let Some(o) = oracle {
                    pipe.attach_checker(o);
                }
                try_drive(pipe, fuel, self.obs, self.deadline)
            }
            None => {
                let mut pipe = Pipeline::new(self.cfg, self.workload.stream());
                if let Some(o) = oracle {
                    pipe.attach_checker(o);
                }
                try_drive(pipe, fuel, self.obs, self.deadline)
            }
        }
    }

    /// Runs the simulation to completion.
    ///
    /// # Panics
    ///
    /// On any abnormal outcome — deadlock, blown cycle budget, violated
    /// invariant — naming the (workload, mode) cell. Callers that need a
    /// recoverable error use [`SimRequest::try_run`].
    pub fn run(self) -> SimRun {
        let name = self.workload.name;
        let mode = self.cfg.fusion.name();
        self.try_run()
            .unwrap_or_else(|e| panic!("{name}/{mode}: {e}"))
    }
}

/// Drives one configured pipeline to completion (see [`SimRequest::try_run`]).
fn try_drive<I: UopSource>(
    mut pipe: Pipeline<I>,
    fuel: u64,
    obs: ObsOpts,
    deadline: Option<Instant>,
) -> Result<SimRun, SimError> {
    pipe.attach_observer(obs);
    pipe.try_run_deadline(fuel, deadline)?;
    Ok(SimRun {
        stats: pipe.stats().clone(),
        observer: pipe.take_observer(),
    })
}

/// What a [`SimRequest`] produces: the statistics, plus the observer when
/// one was attached.
#[derive(Debug)]
pub struct SimRun {
    /// Collected statistics (always present).
    pub stats: SimStats,
    /// The event observer, when the request enabled observability.
    pub observer: Option<Box<Observer>>,
}

impl SimRun {
    /// The full self-describing stats registry: every [`SimStats`] counter
    /// plus, when an observer ran, its event counters and histograms.
    pub fn registry(&self) -> StatsRegistry {
        let mut reg = self.stats.registry();
        if let Some(o) = &self.observer {
            o.export(&mut reg);
        }
        reg
    }
}

/// How one sweep cell ended. Successful statistics live in
/// [`Sweep::results`]; everything else is quarantined in
/// [`Sweep::failures`] with enough detail for a report annotation.
#[derive(Clone, Debug)]
pub enum CellOutcome {
    /// The cell simulated normally. Boxed: [`SimStats`] is large and this
    /// variant is moved around by value.
    Ok(Box<SimStats>),
    /// The cell failed on every attempt (panic, deadlock, blown cycle
    /// budget, invariant violation, or a recording error).
    Failed {
        /// Human-readable description of the final attempt's failure.
        error: String,
        /// Attempts made before quarantining.
        attempts: u32,
    },
    /// The cell exceeded its wall-clock budget on every attempt.
    TimedOut {
        /// The per-attempt wall-clock budget that elapsed, in milliseconds.
        limit_ms: u64,
        /// Attempts made before quarantining.
        attempts: u32,
    },
    /// The cell was never attempted (the sweep was interrupted first).
    Skipped,
}

impl CellOutcome {
    /// One-line status for report annotations and logs.
    pub fn describe(&self) -> String {
        match self {
            CellOutcome::Ok(_) => "ok".to_string(),
            CellOutcome::Failed { error, attempts } => {
                format!("failed after {attempts} attempt(s): {error}")
            }
            CellOutcome::TimedOut { limit_ms, attempts } => {
                format!("timed out after {attempts} attempt(s) ({limit_ms} ms budget)")
            }
            CellOutcome::Skipped => "skipped (sweep interrupted)".to_string(),
        }
    }
}

/// A non-successful cell, as carried by [`Sweep::failures`].
#[derive(Clone, Debug)]
pub struct CellReport {
    /// Benchmark name.
    pub workload: &'static str,
    /// Fusion configuration of the cell.
    pub mode: FusionMode,
    /// How the cell ended (never [`CellOutcome::Ok`]).
    pub outcome: CellOutcome,
}

/// Retry/quarantine policy for one sweep (DESIGN.md §14).
#[derive(Clone, Copy, Debug)]
pub struct SweepPolicy {
    /// Attempts per cell before quarantining (≥ 1; clamped).
    pub max_attempts: u32,
    /// Backoff before the first retry, in milliseconds; doubles per retry.
    pub backoff_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Per-attempt wall-clock budget (`None` = unbounded). The watchdog and
    /// cycle budget still bound runaway cells in simulated time.
    pub cell_timeout: Option<Duration>,
    /// Cycle budget multiplier (see [`SimRequest::fuel_factor`]).
    pub fuel_factor: u64,
}

impl Default for SweepPolicy {
    fn default() -> SweepPolicy {
        SweepPolicy {
            max_attempts: 2,
            backoff_ms: 100,
            backoff_cap_ms: 2_000,
            cell_timeout: None,
            fuel_factor: 20,
        }
    }
}

/// Checkpoint journal configuration for [`run_sweep_opts`].
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Journal file (conventionally `results/<id>.ckpt.jsonl`).
    pub path: PathBuf,
    /// `true`: restore finished cells from an existing journal and append
    /// to it. `false`: start fresh, truncating any prior journal.
    pub resume: bool,
}

/// Everything [`run_sweep_opts`] can be asked to do beyond the cell grid.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Worker threads (0 = [`default_jobs`]).
    pub jobs: usize,
    /// Retry/timeout/quarantine policy.
    pub policy: SweepPolicy,
    /// Crash-safe journal; `None` disables checkpointing.
    pub checkpoint: Option<Checkpoint>,
    /// Deterministic per-cell fault injection (soak/CI only).
    pub chaos: Option<CellChaos>,
    /// Stop claiming new cells after this many have been simulated — a
    /// deterministic stand-in for `kill -9` in checkpoint/resume tests.
    /// The sweep reports itself interrupted, exactly as for SIGINT.
    pub stop_after: Option<usize>,
    /// Content-addressed persistent trace corpus (`None` keeps recordings
    /// in memory for this sweep only). Corrupt or stale entries are
    /// quarantined and re-recorded; cells replay entries block-at-a-time
    /// off disk, so peak memory stays O(jobs × block).
    pub trace_store: Option<TraceStore>,
    /// Install the SIGINT handler so ^C stops cell claiming (the journal is
    /// already durable) instead of killing the process mid-write.
    pub handle_interrupt: bool,
}

/// Results of a full (workloads × modes) sweep, indexable by both axes.
/// Failed, timed-out, and skipped cells are quarantined in
/// [`Sweep::failures`] rather than aborting the sweep; [`Sweep::get`]
/// returns `None` for them.
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    results: Vec<RunResult>,
    /// (workload, mode) → index into `results`. `get` is called in nested
    /// loops by every figure binary; the linear scan it replaces was O(n)
    /// per lookup over 192 cells.
    index: HashMap<(&'static str, FusionMode), usize>,
    /// Workload names in sweep (workload-major execution) order.
    order: Vec<&'static str>,
    /// Non-successful cells, in workload-major order.
    failures: Vec<CellReport>,
    /// Whether the sweep stopped early (SIGINT or `stop_after`).
    interrupted: bool,
    /// Cells restored from a checkpoint journal instead of simulated.
    restored: usize,
}

impl Sweep {
    /// Builds the indexed sweep from results in execution order.
    fn from_results(results: Vec<RunResult>) -> Sweep {
        let mut index = HashMap::with_capacity(results.len());
        let mut order = Vec::new();
        for (i, r) in results.iter().enumerate() {
            if index.insert((r.workload, r.mode), i).is_none() && !order.contains(&r.workload) {
                order.push(r.workload);
            }
        }
        Sweep {
            results,
            index,
            order,
            failures: Vec::new(),
            interrupted: false,
            restored: 0,
        }
    }

    /// Reassembles a sweep from externally produced cells — the thin client
    /// of a sweep server rebuilds the exact structure a local
    /// [`run_sweep_opts`] over the same grid would have produced, so every
    /// downstream report renders identically. `order` is the requested
    /// workload order (which, as in a local sweep, lists every requested
    /// workload even if all of its cells failed); `failures` are the
    /// non-successful cells in workload-major order.
    pub fn assemble(
        results: Vec<RunResult>,
        order: Vec<&'static str>,
        failures: Vec<CellReport>,
    ) -> Sweep {
        let mut sweep = Sweep::from_results(results);
        sweep.order = order;
        sweep.failures = failures;
        sweep
    }

    /// All results, in execution order (workload-major).
    pub fn results(&self) -> &[RunResult] {
        &self.results
    }

    /// The result for one (workload, mode) cell; `None` when the cell
    /// failed, timed out, was skipped, or was never part of the sweep.
    pub fn get(&self, workload: &str, mode: FusionMode) -> Option<&SimStats> {
        self.index
            .get(&(workload, mode))
            .map(|&i| &self.results[i].stats)
    }

    /// Workload names, in sweep order. Includes workloads whose cells all
    /// failed — consumers skip per-cell via [`Sweep::get`].
    pub fn workloads(&self) -> Vec<&'static str> {
        self.order.clone()
    }

    /// Non-successful cells, in workload-major order.
    pub fn failures(&self) -> &[CellReport] {
        &self.failures
    }

    /// Whether the sweep stopped early (SIGINT or a `stop_after` cap).
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// Cells restored from the checkpoint journal instead of simulated.
    pub fn restored(&self) -> usize {
        self.restored
    }

    /// Whether every cell produced statistics.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && !self.interrupted
    }

    /// The process exit code this sweep merits: [`crate::exit::COMPLETE`]
    /// when every cell succeeded, [`crate::exit::INTERRUPTED`] when the
    /// sweep stopped early, [`crate::exit::FAILED`] when *nothing*
    /// succeeded, and [`crate::exit::PARTIAL`] when some cells were
    /// quarantined but the rest completed.
    pub fn exit_code(&self) -> i32 {
        if self.interrupted {
            crate::exit::INTERRUPTED
        } else if self.failures.is_empty() {
            crate::exit::COMPLETE
        } else if self.results.is_empty() {
            crate::exit::FAILED
        } else {
            crate::exit::PARTIAL
        }
    }

    /// Per-workload IPC of `mode` normalized to `baseline`, plus the
    /// geometric mean, in sweep order. Workloads missing either cell
    /// (quarantined or skipped) are omitted.
    pub fn normalized_ipc(&self, mode: FusionMode, baseline: FusionMode) -> (BTreeMap<&'static str, f64>, f64) {
        let mut out = BTreeMap::new();
        let mut vals = Vec::new();
        for w in self.workloads() {
            if let (Some(m), Some(b)) = (self.get(w, mode), self.get(w, baseline)) {
                let r = m.ipc() / b.ipc();
                out.insert(w, r);
                vals.push(r);
            }
        }
        (out, crate::metrics::geomean(&vals))
    }
}

/// Worker count used when the caller does not specify one: every core.
/// Results are independent of the worker count, so defaulting to full
/// parallelism is safe.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Mutex-guarded progress reporter: a single writer keeps the `\r` status
/// line on stderr coherent under concurrent workers, and completion prints
/// elapsed wall-clock time. Used by the sweep engine and by every census /
/// scan loop in the figure binaries (raw `eprint!("\r…")` from concurrent
/// contexts interleaves).
pub struct Progress {
    state: Mutex<(usize, Instant)>, // (items done, start)
    total: usize,
}

impl Progress {
    /// A reporter expecting `total` items.
    pub fn new(total: usize) -> Progress {
        Progress {
            state: Mutex::new((0, Instant::now())),
            total,
        }
    }

    /// Marks one item finished and redraws the status line
    /// (`[done/total] label detail`).
    pub fn item_done(&self, label: &str, detail: &str) {
        let mut s = self.state.lock().unwrap();
        s.0 += 1;
        eprint!("\r[{}/{}] {:<18} {:<14}", s.0, self.total, label, detail);
    }

    /// Overwrites the status line with `<what> complete in <elapsed>s`.
    pub fn finish(&self, what: &str) {
        let s = self.state.lock().unwrap();
        eprintln!(
            "\r[{}/{}] {what} complete in {:.1}s{:24}",
            s.0,
            self.total,
            s.1.elapsed().as_secs_f64(),
            ""
        );
    }

    /// Items completed so far.
    pub fn done(&self) -> usize {
        self.state.lock().unwrap().0
    }
}

/// Extracts a readable message from a caught panic payload. Shared by the
/// sweep executor, the fuzz harness, and tests that assert on panics.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// --- SIGINT: stop claiming cells, let the durable journal do the rest ----

/// Set by the SIGINT handler; sweep workers stop claiming new cells when it
/// goes high. Reset at the start of every sweep.
static SWEEP_INTERRUPTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIG_DFL: usize = 0;

extern "C" {
    // From libc, which std already links on every supported target; keeps
    // the workspace dependency-free. ISO C signal(), not sigaction: the
    // handler only stores to an atomic, which is async-signal-safe.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn sigint_flag_setter(_sig: i32) {
    SWEEP_INTERRUPTED.store(true, Ordering::SeqCst);
    // Restore the default disposition so a second ^C kills the process
    // instead of being swallowed.
    unsafe { signal(SIGINT, SIG_DFL) };
}

/// Installs the cooperative SIGINT handler: the first ^C asks running
/// sweeps to stop claiming new cells (every finished cell is already
/// fsynced to the journal), the second kills the process. Idempotent.
pub fn install_interrupt_handler() {
    unsafe { signal(SIGINT, sigint_flag_setter as extern "C" fn(i32) as usize) };
}

/// Whether an interrupt (SIGINT or `stop_after`) has been requested for the
/// sweep currently in flight.
pub fn sweep_interrupted() -> bool {
    SWEEP_INTERRUPTED.load(Ordering::SeqCst)
}

// --- Checkpoint journal --------------------------------------------------

/// Schema tag on every journal line.
const CKPT_SCHEMA: &str = "helios-ckpt-v1";

/// One finished cell as a journal line:
/// `{"schema":"helios-ckpt-v1","workload":…,"mode":…,"cfg":"<16 hex>","stats":{…}}`.
fn journal_line(workload: &str, mode: &str, cfg_digest: u64, stats: &SimStats) -> String {
    let stats_body: Vec<String> = stats
        .to_kv()
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect();
    format!(
        "{{\"schema\":\"{CKPT_SCHEMA}\",\"workload\":\"{}\",\"mode\":\"{}\",\"cfg\":\"{cfg_digest:016x}\",\"stats\":{{{}}}}}",
        crate::json::escape(workload),
        crate::json::escape(mode),
        stats_body.join(",")
    )
}

/// Parses one journal line back into `(workload, mode, cfg digest, stats)`.
fn parse_journal_line(line: &str) -> Result<(String, String, u64, SimStats), String> {
    let v = crate::Json::parse(line).map_err(|e| e.to_string())?;
    if v.get("schema").and_then(crate::Json::as_str) != Some(CKPT_SCHEMA) {
        return Err(format!("not a {CKPT_SCHEMA} record"));
    }
    let workload = v
        .get("workload")
        .and_then(crate::Json::as_str)
        .ok_or("missing workload")?;
    let mode = v.get("mode").and_then(crate::Json::as_str).ok_or("missing mode")?;
    let cfg = v
        .get("cfg")
        .and_then(crate::Json::as_str)
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or("missing or malformed cfg digest")?;
    let kv: Vec<(&str, u64)> = v
        .get("stats")
        .and_then(crate::Json::as_object)
        .ok_or("missing stats")?
        .iter()
        .map(|(k, n)| {
            n.as_u64()
                .map(|n| (k.as_str(), n))
                .ok_or_else(|| format!("non-integer stat {k}"))
        })
        .collect::<Result<_, _>>()?;
    let stats = SimStats::from_kv(kv)?;
    Ok((workload.to_string(), mode.to_string(), cfg, stats))
}

/// Reads a journal, skipping (with a warning) lines that fail to parse —
/// a torn final write from a crash must not poison the resume.
fn load_journal(path: &Path) -> io::Result<HashMap<(String, u64), SimStats>> {
    let mut map = HashMap::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(map),
        Err(e) => return Err(e),
    };
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_journal_line(line) {
            Ok((w, _mode, cfg, stats)) => {
                map.insert((w, cfg), stats);
            }
            Err(e) => eprintln!(
                "warning: {}:{}: unreadable checkpoint line ({e}); cell will be re-simulated",
                path.display(),
                lineno + 1
            ),
        }
    }
    Ok(map)
}

/// Append-only, fsync-per-line journal writer: a line is only ever observed
/// complete or absent, never torn across a crash *and* trusted.
struct Journal {
    file: std::fs::File,
}

impl Journal {
    fn append(&mut self, line: &str) -> io::Result<()> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()
    }
}

// --- Trace cache ---------------------------------------------------------

/// Per-workload trace handles for one sweep. A workload's trace is obtained
/// by the first worker that needs it, shared by every concurrent cell of
/// that workload, and dropped as soon as its last cell completes. Without a
/// store the trace is an in-memory recording (peak memory O(jobs) whole
/// traces); with a [`TraceStore`] the handle is a verified *file* and every
/// cell streams it block-at-a-time, so peak memory drops to O(jobs × block)
/// and nothing is ever recorded twice — within this sweep or across sweeps.
/// Recording *errors* are cached too, so a starved workload fails each of
/// its cells fast instead of re-recording per cell.
struct TraceCache {
    slots: Vec<Mutex<Option<Result<Trace, String>>>>,
    /// Cells still outstanding per workload; reaching zero frees the slot.
    remaining: Vec<AtomicUsize>,
}

impl TraceCache {
    fn new(workloads: usize, modes: usize) -> TraceCache {
        TraceCache {
            slots: (0..workloads).map(|_| Mutex::new(None)).collect(),
            remaining: (0..workloads).map(|_| AtomicUsize::new(modes)).collect(),
        }
    }

    /// The trace for workload `wi`, recording (or fetching from `store`) on
    /// first demand. Concurrent requests for the same workload wait on its
    /// slot rather than double-recording.
    fn get(&self, wi: usize, w: &Workload, store: Option<&TraceStore>) -> Result<Trace, String> {
        let mut slot = self.slots[wi].lock().unwrap();
        if let Some(r) = &*slot {
            return r.clone();
        }
        // Recording errors keep their historical `recording <name>: …`
        // message shape; run_sweep_jobs's panic path matches on it.
        let r = match store {
            Some(s) => w.stored(s),
            None => w.trace().map_err(helios_emu::StoreError::Record),
        }
        .map_err(|e| format!("recording {}: {e}", w.name));
        *slot = Some(r.clone());
        r
    }

    /// Marks one of workload `wi`'s cells finished, freeing the recording
    /// after the last one.
    fn cell_finished(&self, wi: usize) {
        if self.remaining[wi].fetch_sub(1, Ordering::AcqRel) == 1 {
            self.slots[wi].lock().unwrap().take();
        }
    }
}

// --- The resilient executor ----------------------------------------------

/// Runs every (workload × mode) combination on [`default_jobs`] worker
/// threads, reporting progress on stderr. Results are deterministic and
/// workload-major regardless of the worker count.
pub fn run_sweep(workloads: &[Workload], modes: &[FusionMode]) -> Sweep {
    run_sweep_jobs(workloads, modes, default_jobs())
}

/// [`run_sweep`] with an explicit worker count (the `--jobs` flag of the
/// figure binaries). `jobs` is clamped to at least 1.
///
/// # Panics
///
/// If any cell's simulation fails, the panic names the failing
/// (workload, mode) cell. Callers that need partial results use
/// [`run_sweep_opts`].
pub fn run_sweep_jobs(workloads: &[Workload], modes: &[FusionMode], jobs: usize) -> Sweep {
    let opts = SweepOptions {
        jobs,
        policy: SweepPolicy {
            max_attempts: 1,
            ..SweepPolicy::default()
        },
        ..SweepOptions::default()
    };
    let sweep = run_sweep_opts(workloads, modes, &opts).expect("sweep without checkpoint cannot fail on i/o");
    if let Some(f) = sweep.failures.first() {
        match &f.outcome {
            // Recording errors keep their historical message shape.
            CellOutcome::Failed { error, .. } if error.starts_with("recording ") => {
                panic!("{error}")
            }
            other => panic!(
                "sweep cell {}/{} failed: {}",
                f.workload,
                f.mode.name(),
                other.describe()
            ),
        }
    }
    sweep
}

/// The resilient sweep executor behind every figure binary (DESIGN.md §14):
/// per-cell fault isolation with bounded retry and quarantine, optional
/// wall-clock timeouts, an optional crash-safe checkpoint journal with
/// resume, optional deterministic chaos injection, and cooperative
/// interrupt handling. Healthy cells always complete; every abnormal cell
/// is reported in [`Sweep::failures`].
///
/// # Errors
///
/// Only on checkpoint I/O setup (unreadable journal directory). Cell-level
/// problems — including trace-store corruption, which is quarantined and
/// re-recorded — never surface here; they are handled per cell.
pub fn run_sweep_opts(
    workloads: &[Workload],
    modes: &[FusionMode],
    opts: &SweepOptions,
) -> io::Result<Sweep> {
    let total = workloads.len() * modes.len();
    let jobs = if opts.jobs == 0 { default_jobs() } else { opts.jobs }.clamp(1, total.max(1));
    SWEEP_INTERRUPTED.store(false, Ordering::SeqCst);
    if opts.handle_interrupt {
        install_interrupt_handler();
    }

    let cfgs: Vec<PipeConfig> = modes.iter().map(|&m| PipeConfig::with_fusion(m)).collect();

    // Restore finished cells from the journal before spawning workers.
    let outcomes: Vec<Mutex<Option<CellOutcome>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let mut restored = 0usize;
    let journal: Option<Mutex<Journal>> = match &opts.checkpoint {
        Some(ck) => {
            if let Some(parent) = ck.path.parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            if ck.resume {
                let prior = load_journal(&ck.path)?;
                for (i, slot) in outcomes.iter().enumerate() {
                    let (w, mi) = (&workloads[i / modes.len()], i % modes.len());
                    if let Some(stats) = prior.get(&(w.name.to_string(), cfgs[mi].digest())) {
                        *slot.lock().unwrap() = Some(CellOutcome::Ok(Box::new(stats.clone())));
                        restored += 1;
                    }
                }
                if restored > 0 {
                    eprintln!(
                        "resume: restored {restored}/{total} cells from {}",
                        ck.path.display()
                    );
                }
            }
            let file = if ck.resume {
                std::fs::OpenOptions::new().create(true).append(true).open(&ck.path)?
            } else {
                std::fs::File::create(&ck.path)?
            };
            Some(Mutex::new(Journal { file }))
        }
        None => None,
    };
    let store_before: Option<StoreStats> = opts.trace_store.as_ref().map(TraceStore::stats);

    let reporter = Progress::new(total);
    let traces = TraceCache::new(workloads.len(), modes.len());
    let next = AtomicUsize::new(0);
    let simulated = AtomicUsize::new(0); // for `stop_after`
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                if SWEEP_INTERRUPTED.load(Ordering::SeqCst) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let (wi, mi) = (i / modes.len(), i % modes.len());
                let (w, mode) = (&workloads[wi], modes[mi]);
                if outcomes[i].lock().unwrap().is_some() {
                    // Restored from the journal: nothing to simulate.
                    traces.cell_finished(wi);
                    reporter.item_done(w.name, mode.name());
                    continue;
                }
                if let Some(cap) = opts.stop_after {
                    if simulated.fetch_add(1, Ordering::Relaxed) >= cap {
                        SWEEP_INTERRUPTED.store(true, Ordering::SeqCst);
                        break;
                    }
                }
                let outcome = run_cell(w, mode, cfgs[mi], wi, &traces, opts);
                if let (CellOutcome::Ok(stats), Some(j)) = (&outcome, &journal) {
                    let line = journal_line(w.name, mode.name(), cfgs[mi].digest(), stats);
                    if let Err(e) = j.lock().unwrap().append(&line) {
                        eprintln!("\rwarning: checkpoint append failed: {e}");
                    }
                }
                *outcomes[i].lock().unwrap() = Some(outcome);
                traces.cell_finished(wi);
                reporter.item_done(w.name, mode.name());
            });
        }
    });

    let interrupted = SWEEP_INTERRUPTED.load(Ordering::SeqCst);
    if interrupted {
        eprintln!(
            "\rsweep interrupted: {}/{} cells finished (journal is durable; rerun with --resume)",
            reporter.done(),
            total
        );
    } else {
        reporter.finish("sweep");
    }
    if let (Some(store), Some(before)) = (&opts.trace_store, &store_before) {
        // One grep-stable line per sweep; CI asserts "0 recorded" on a
        // warm store.
        let d = store.stats().since(before);
        eprintln!(
            "trace store: {} recorded, {} hits, {} migrated, {} quarantined",
            d.recorded, d.hits, d.migrated, d.quarantined
        );
    }

    let mut results = Vec::new();
    let mut failures = Vec::new();
    for (i, slot) in outcomes.into_iter().enumerate() {
        let (w, mode) = (workloads[i / modes.len()].name, modes[i % modes.len()]);
        match slot.into_inner().unwrap() {
            Some(CellOutcome::Ok(stats)) => results.push(RunResult {
                workload: w,
                mode,
                stats: *stats,
            }),
            Some(outcome) => failures.push(CellReport {
                workload: w,
                mode,
                outcome,
            }),
            None => failures.push(CellReport {
                workload: w,
                mode,
                outcome: CellOutcome::Skipped,
            }),
        }
    }
    for f in &failures {
        if !matches!(f.outcome, CellOutcome::Skipped) {
            eprintln!("  quarantined {}/{}: {}", f.workload, f.mode.name(), f.outcome.describe());
        }
    }

    let mut sweep = Sweep::from_results(results);
    sweep.order = workloads.iter().map(|w| w.name).collect();
    sweep.failures = failures;
    sweep.interrupted = interrupted;
    sweep.restored = restored;
    Ok(sweep)
}

/// Simulates one cell under the sweep policy: bounded retry with capped
/// exponential backoff, wall-clock deadline, panic isolation, and
/// deterministic chaos injection. Returns the final outcome; never panics.
fn run_cell(
    w: &Workload,
    mode: FusionMode,
    cfg: PipeConfig,
    wi: usize,
    traces: &TraceCache,
    opts: &SweepOptions,
) -> CellOutcome {
    let policy = &opts.policy;
    let chaos = opts.chaos.as_ref().and_then(|c| c.fault_for(w.name, mode.name()));
    let trace = match traces.get(wi, w, opts.trace_store.as_ref()) {
        Ok(t) => t,
        Err(error) => return CellOutcome::Failed { error, attempts: 1 },
    };
    let max_attempts = policy.max_attempts.max(1);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        // An injected timeout is an already-expired deadline, so the real
        // timeout machinery (deadline poll in the pipeline run loop, the
        // retry/quarantine path here) is what gets exercised.
        let deadline = match chaos {
            Some(CellFault::Timeout) => Some(Instant::now()),
            _ => policy.cell_timeout.map(|d| Instant::now() + d),
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            if chaos == Some(CellFault::Panic) {
                panic!("injected chaos panic");
            }
            SimRequest::new(w, cfg)
                .replaying(&trace)
                .budget(policy.fuel_factor)
                .with_deadline(deadline)
                .try_run()
        }));
        let outcome = match result {
            Ok(Ok(run)) => return CellOutcome::Ok(Box::new(run.stats)),
            Ok(Err(SimError::WallClockTimeout { limit_ms, .. })) => {
                CellOutcome::TimedOut { limit_ms, attempts }
            }
            Ok(Err(e)) => CellOutcome::Failed {
                error: e.to_string(),
                attempts,
            },
            Err(p) => CellOutcome::Failed {
                error: panic_message(&*p),
                attempts,
            },
        };
        if attempts >= max_attempts || sweep_interrupted() {
            return outcome;
        }
        let backoff = policy
            .backoff_ms
            .saturating_mul(1u64 << (attempts - 1).min(16))
            .min(policy.backoff_cap_ms);
        if backoff > 0 {
            std::thread::sleep(Duration::from_millis(backoff));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_indexing() {
        let ws = vec![helios_workloads::workload("crc32").unwrap()];
        let modes = [FusionMode::NoFusion, FusionMode::CsfSbr];
        let s = run_sweep_jobs(&ws, &modes, 1);
        assert_eq!(s.results().len(), 2);
        assert!(s.get("crc32", FusionMode::NoFusion).is_some());
        assert!(s.get("crc32", FusionMode::Helios).is_none());
        let (per, geo) = s.normalized_ipc(FusionMode::CsfSbr, FusionMode::NoFusion);
        assert_eq!(per.len(), 1);
        assert!(geo > 0.5 && geo < 2.0);
        assert!(s.is_complete());
        assert_eq!(s.exit_code(), crate::exit::COMPLETE);
    }

    #[test]
    fn sweep_order_is_workload_major_input_order() {
        // Deliberately not alphabetical: the sweep must preserve the caller's
        // workload order, not sort it.
        let ws = vec![
            helios_workloads::workload("susan").unwrap(),
            helios_workloads::workload("crc32").unwrap(),
        ];
        let modes = [FusionMode::NoFusion, FusionMode::CsfSbr];
        let s = run_sweep_jobs(&ws, &modes, 2);
        assert_eq!(s.workloads(), vec!["susan", "crc32"]);
        let cells: Vec<(&str, FusionMode)> =
            s.results().iter().map(|r| (r.workload, r.mode)).collect();
        assert_eq!(
            cells,
            vec![
                ("susan", FusionMode::NoFusion),
                ("susan", FusionMode::CsfSbr),
                ("crc32", FusionMode::NoFusion),
                ("crc32", FusionMode::CsfSbr),
            ]
        );
    }

    #[test]
    fn sim_request_is_deterministic() {
        // Two independent runs of the same request agree exactly, and
        // observability defaults to off.
        let w = helios_workloads::workload("crc32").unwrap();
        let a = SimRequest::mode(&w, FusionMode::CsfSbr).run();
        let b = SimRequest::mode(&w, FusionMode::CsfSbr).run();
        assert_eq!((a.stats.cycles, a.stats.uops), (b.stats.cycles, b.stats.uops));
        assert!(a.observer.is_none(), "observability defaults to off");
    }

    #[test]
    fn observed_run_matches_unobserved_timing() {
        // Metrics-level observation must not perturb simulated timing.
        let w = helios_workloads::workload("crc32").unwrap();
        let plain = SimRequest::mode(&w, FusionMode::Helios).run();
        let observed = SimRequest::mode(&w, FusionMode::Helios)
            .observing(ObsOpts::metrics())
            .run();
        assert_eq!(plain.stats.cycles, observed.stats.cycles);
        assert_eq!(plain.stats.uops, observed.stats.uops);
        let reg = observed.registry();
        assert!(reg.get("obs.commit_events").is_some(), "observer exported");
        assert!(plain.registry().get("obs.commit_events").is_none());
    }

    #[test]
    fn failing_cell_is_named() {
        // A starved workload makes recording fail loudly with the name.
        let mut w = helios_workloads::workload("crc32").unwrap();
        w.fuel = 10;
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_sweep_jobs(&[w], &[FusionMode::NoFusion], 2)
        }))
        .unwrap_err();
        let msg = panic_message(&*err);
        assert!(msg.contains("crc32"), "panic names the workload: {msg}");
    }

    #[test]
    fn expired_deadline_is_a_sim_error_not_a_panic() {
        let w = helios_workloads::workload("crc32").unwrap();
        let err = SimRequest::mode(&w, FusionMode::NoFusion)
            .with_deadline(Some(Instant::now()))
            .try_run()
            .unwrap_err();
        assert!(matches!(err, SimError::WallClockTimeout { .. }), "{err}");
    }

    #[test]
    fn journal_line_round_trips() {
        let w = helios_workloads::workload("crc32").unwrap();
        let stats = SimRequest::mode(&w, FusionMode::NoFusion).run().stats;
        let cfg = PipeConfig::with_fusion(FusionMode::NoFusion).digest();
        let line = journal_line("crc32", "NoFusion", cfg, &stats);
        let (pw, pm, pcfg, pstats) = parse_journal_line(&line).unwrap();
        assert_eq!((pw.as_str(), pm.as_str(), pcfg), ("crc32", "NoFusion", cfg));
        assert_eq!(pstats.to_kv(), stats.to_kv());
        // Corruption in any part fails parsing, not the process.
        assert!(parse_journal_line(&line[..line.len() / 2]).is_err());
        assert!(parse_journal_line(&line.replace("cycles", "cycels")).is_err());
        assert!(parse_journal_line("{\"schema\":\"other\"}").is_err());
    }
}
