//! helios-fuzz: differential co-simulation fuzzing of the whole stack.
//!
//! The paper's methodology rests on two independent models — the functional
//! emulator (`helios-emu`, the Spike substitute) and the cycle-level
//! out-of-order pipeline (`helios-uarch`) — agreeing on architectural
//! behaviour under every fusion configuration: macro-op fusion must be a
//! timing-only transformation. This module generates seeded random RV64IM
//! programs and drives three oracles over each one:
//!
//! 1. **ISA layer** — `decode` is total over arbitrary `u32` words, and
//!    `encode(decode(w)) == w` for every accepted word ([`check_word`]).
//! 2. **Emulator ↔ pipeline** — the pipeline's committed µ-op stream must
//!    match the emulator's retired trace instruction-for-instruction,
//!    enforced by the lockstep [`OracleChecker`](helios_uarch) attached to
//!    every run.
//! 3. **Mode invariance** — all six [`FusionMode`] configurations must
//!    retire exactly the emulator's instruction count with zero invariant
//!    violations ([`check_program`]).
//!
//! Programs are generated as plain assembly text (the corpus format), so a
//! failing case can be committed verbatim under `tests/corpus/` and replayed
//! forever after ([`replay_corpus`]). Failures are minimized first by a
//! delta-debugging [`shrink`] pass over the generator's block structure.
//!
//! Everything is seeded through `helios-prng`: the same
//! (`seed`, `iters`, `profile`) triple reproduces the same campaign,
//! bit-for-bit, regardless of the worker count.

use crate::{default_jobs, panic_message, Progress};
use helios_core::FusionMode;
use helios_emu::Trace;
use helios_isa::{decode, encode, parse_asm, Program};
use helios_prng::{Rng, SeedableRng, SliceRandom, StdRng};
use helios_uarch::{PipeConfig, Pipeline};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Fuel budget (retired µ-ops) for one generated program's functional
/// execution. The generator bounds dynamic length to a few tens of
/// thousands of µ-ops, so hitting this means the generator produced a
/// non-terminating program — a fuzzer bug the oracles report as a failure.
pub const FUZZ_FUEL: u64 = 1 << 20;

/// Base address of the load/store arena. Every generated memory access is
/// sandboxed into `[ARENA_BASE, ARENA_BASE + 4 KiB)`; the sparse memory
/// model zero-fills reads of never-written locations.
const ARENA_BASE: i64 = 0x0020_0000;

/// Second arena base register (`s2 = s0 + 264`): pairs addressed through
/// different base registers land in nearby cache lines, provoking the
/// different-base-register (DBR) fusion idiom.
const ALT_BASE_DELTA: i64 = 264;

/// Largest direct load/store offset (keeps `off + 8` within the S/I-type
/// immediate range and inside the arena).
const MAX_OFF: i32 = 2024;

/// `andi` mask for computed ("gather") addresses: 8-aligned, `0..=2040`.
const GATHER_MASK: i64 = 0x7f8;

/// Registers the generator treats as data: sources and destinations of
/// generated operations. The structural registers (`s0`/`s2` arena bases,
/// `s1` outer counter, `s3` inner counter, `t2` scratch, `ra` link) are
/// never picked, so control flow stays bounded by construction.
const WORK: [&str; 8] = ["a0", "a1", "a2", "a3", "a4", "a5", "t0", "t1"];

/// Random words screened by the ISA oracle per generated program.
const WORDS_PER_PROGRAM: u64 = 64;

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

/// Generation profile: tunes the block mix toward the behaviours that
/// provoke the paper's fusion categories.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    /// Balanced mix of every block kind.
    Mixed,
    /// Branch-dense: heavy on forward skips (hoisted test + branch → NCTF
    /// shapes) and short inner loops.
    BranchDense,
    /// Memory-dense: heavy on loads/stores, same-base and different-base
    /// pairs (CSF/NCSF/DBR shapes), computed addresses.
    MemDense,
}

impl Profile {
    /// Every profile, in rotation order.
    pub const ALL: [Profile; 3] = [Profile::Mixed, Profile::BranchDense, Profile::MemDense];

    /// CLI / report name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Mixed => "mixed",
            Profile::BranchDense => "branch-dense",
            Profile::MemDense => "mem-dense",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Profile> {
        Profile::ALL.into_iter().find(|p| p.name() == s)
    }
}

// ---------------------------------------------------------------------------
// Program representation
// ---------------------------------------------------------------------------

/// One generator block: between one and a handful of instructions with a
/// self-contained (always-terminating) control structure. The shrinker
/// removes and flattens blocks, never individual raw instructions, so every
/// shrink candidate is well-formed by construction.
#[derive(Clone, Debug)]
enum Block {
    /// `op rd, rs1, rs2` between work registers.
    Alu {
        op: &'static str,
        rd: &'static str,
        rs1: &'static str,
        rs2: &'static str,
    },
    /// `op rd, rs1, imm` with an in-range immediate.
    AluImm {
        op: &'static str,
        rd: &'static str,
        rs1: &'static str,
        imm: i64,
    },
    /// Direct arena load.
    Load {
        mn: &'static str,
        rd: &'static str,
        base: &'static str,
        off: i32,
    },
    /// Direct arena store.
    Store {
        mn: &'static str,
        src: &'static str,
        base: &'static str,
        off: i32,
    },
    /// Two loads at `off` / `off + 8`; same base (CSF/NCSF fodder) or
    /// different bases into overlapping lines (DBR fodder).
    LoadPair {
        rd1: &'static str,
        rd2: &'static str,
        base1: &'static str,
        base2: &'static str,
        off: i32,
    },
    /// Computed address: `andi t2, src, 0x7f8; add t2, t2, base;` then a
    /// load into `reg` or a store of `reg` (pointer-chase / NCSF fodder).
    Gather {
        mn: &'static str,
        reg: &'static str,
        src: &'static str,
        base: &'static str,
    },
    /// `lui`/`auipc` into a work register.
    Wide {
        mn: &'static str,
        rd: &'static str,
        imm20: i32,
    },
    /// Serializing memory fence.
    Fence,
    /// Checksum ecall: `li a7, 64; mv a0, src; ecall` (serializing, and
    /// folds `src` into the architectural output log).
    Output { src: &'static str },
    /// Forward skip over `body`. `hoisted` separates the test from the
    /// branch by the first body block (the NCTF shape).
    SkipIf {
        hoisted: bool,
        kind: &'static str,
        rs1: &'static str,
        rs2: &'static str,
        body: Vec<Block>,
    },
    /// Bounded inner loop (`s3` counter, body of simple blocks).
    Loop { count: u8, body: Vec<Block> },
    /// Call to a generated leaf function (exercises `jal ra` / `jalr`).
    Call { body: Vec<Block> },
}

impl Block {
    /// The nested body of a control block, if any (used by the shrinker to
    /// flatten control structure away).
    fn body(&self) -> Option<&[Block]> {
        match self {
            Block::SkipIf { body, .. } | Block::Loop { body, .. } | Block::Call { body } => {
                Some(body)
            }
            _ => None,
        }
    }
}

/// A generated fuzz program: initial register values plus a block list,
/// wrapped in a bounded outer loop and a checksum epilogue. The assembly
/// text ([`FuzzProgram::asm_text`]) is the single source of truth — the
/// simulated [`Program`] is parsed back from it, so a committed corpus seed
/// replays exactly what the campaign executed.
#[derive(Clone, Debug)]
pub struct FuzzProgram {
    /// Seed that generated this program.
    pub seed: u64,
    /// Profile that generated this program.
    pub profile: Profile,
    iters: u32,
    init: Vec<(&'static str, i64)>,
    blocks: Vec<Block>,
}

/// Values worth seeding registers with: signedness/width boundaries the
/// W-suffix and divide semantics pivot on.
const INTERESTING: [i64; 14] = [
    0,
    1,
    -1,
    2,
    -2,
    0x7f,
    0xff,
    0x7fff_ffff,
    -0x8000_0000,
    0x8000_0000,
    0xffff_ffff,
    i64::MAX,
    i64::MIN,
    i64::MIN + 1,
];

const ALU_OPS: [&str; 28] = [
    "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and", "addw", "subw", "sllw",
    "srlw", "sraw", "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu", "mulw", "divw",
    "divuw", "remw", "remuw",
];

const ALU_IMM_OPS: [&str; 13] = [
    "addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai", "addiw", "slliw",
    "srliw", "sraiw",
];

const LOAD_MNEMONICS: [&str; 7] = ["lb", "lh", "lw", "ld", "lbu", "lhu", "lwu"];
const STORE_MNEMONICS: [&str; 4] = ["sb", "sh", "sw", "sd"];
const BRANCH_MNEMONICS: [&str; 6] = ["beq", "bne", "blt", "bge", "bltu", "bgeu"];

struct Gen {
    rng: StdRng,
    profile: Profile,
    /// Most recently written work register: reused as a source with high
    /// probability so dependency chains (register pressure) build up
    /// instead of every op reading cold registers.
    hot: &'static str,
}

impl Gen {
    fn work(&mut self) -> &'static str {
        WORK.choose(&mut self.rng).unwrap()
    }

    /// A source register: the hot register half the time.
    fn src(&mut self) -> &'static str {
        if self.rng.gen_bool(0.5) {
            self.hot
        } else {
            self.work()
        }
    }

    fn dst(&mut self) -> &'static str {
        let rd = self.work();
        self.hot = rd;
        rd
    }

    fn mem_off(&mut self, align: i32) -> i32 {
        let off = self.rng.gen_range(0..=MAX_OFF);
        // Mostly aligned; occasionally deliberately misaligned (the memory
        // model and LSQ must handle line- and page-crossing accesses).
        if self.rng.gen_bool(0.85) {
            off & !(align - 1)
        } else {
            off
        }
    }

    fn simple_block(&mut self) -> Block {
        // Weights differ per profile but the candidate set is the same.
        let roll = self.rng.gen_range(0..100u32);
        let cuts: [u32; 6] = match self.profile {
            // alu, alu-imm, load, store, wide, fence (output = remainder)
            Profile::Mixed => [35, 60, 72, 84, 92, 96],
            Profile::BranchDense => [40, 75, 83, 91, 95, 97],
            Profile::MemDense => [20, 35, 65, 90, 94, 96],
        };
        if roll < cuts[0] {
            Block::Alu {
                op: ALU_OPS.choose(&mut self.rng).unwrap(),
                rd: self.dst(),
                rs1: self.src(),
                rs2: self.work(),
            }
        } else if roll < cuts[1] {
            let op = *ALU_IMM_OPS.choose(&mut self.rng).unwrap();
            let imm = match op {
                "slli" | "srli" | "srai" => self.rng.gen_range(0..64i64),
                "slliw" | "srliw" | "sraiw" => self.rng.gen_range(0..32i64),
                _ => self.rng.gen_range(-2048..2048i64),
            };
            Block::AluImm {
                op,
                rd: self.dst(),
                rs1: self.src(),
                imm,
            }
        } else if roll < cuts[2] {
            let mn = *LOAD_MNEMONICS.choose(&mut self.rng).unwrap();
            let align = load_store_align(mn);
            Block::Load {
                mn,
                rd: self.dst(),
                base: self.base(),
                off: self.mem_off(align),
            }
        } else if roll < cuts[3] {
            let mn = *STORE_MNEMONICS.choose(&mut self.rng).unwrap();
            let align = load_store_align(mn);
            Block::Store {
                mn,
                src: self.src(),
                base: self.base(),
                off: self.mem_off(align),
            }
        } else if roll < cuts[4] {
            Block::Wide {
                mn: if self.rng.gen_bool(0.5) { "lui" } else { "auipc" },
                rd: self.dst(),
                imm20: self.rng.gen_range(-(1 << 19)..(1 << 19)),
            }
        } else if roll < cuts[5] {
            Block::Fence
        } else {
            Block::Output { src: self.src() }
        }
    }

    fn base(&mut self) -> &'static str {
        if self.rng.gen_bool(0.7) {
            "s0"
        } else {
            "s2"
        }
    }

    fn body(&mut self, max: usize) -> Vec<Block> {
        let n = self.rng.gen_range(1..=max);
        (0..n).map(|_| self.simple_block()).collect()
    }

    fn block(&mut self) -> Block {
        let roll = self.rng.gen_range(0..100u32);
        // simple, pair, gather, skip, loop (call = remainder)
        let cuts: [u32; 5] = match self.profile {
            Profile::Mixed => [55, 63, 71, 85, 94],
            Profile::BranchDense => [45, 50, 55, 85, 96],
            Profile::MemDense => [40, 62, 84, 92, 97],
        };
        if roll < cuts[0] {
            self.simple_block()
        } else if roll < cuts[1] {
            let same_base = self.rng.gen_bool(0.6);
            let base1 = self.base();
            Block::LoadPair {
                rd1: self.dst(),
                rd2: self.dst(),
                base1,
                base2: if same_base {
                    base1
                } else if base1 == "s0" {
                    "s2"
                } else {
                    "s0"
                },
                off: self.mem_off(8).min(MAX_OFF - 8),
            }
        } else if roll < cuts[2] {
            let is_store = self.rng.gen_bool(0.4);
            Block::Gather {
                mn: if is_store {
                    STORE_MNEMONICS.choose(&mut self.rng).unwrap()
                } else {
                    LOAD_MNEMONICS.choose(&mut self.rng).unwrap()
                },
                reg: if is_store { self.src() } else { self.dst() },
                src: self.src(),
                base: self.base(),
            }
        } else if roll < cuts[3] {
            Block::SkipIf {
                hoisted: self.rng.gen_bool(0.5),
                kind: BRANCH_MNEMONICS.choose(&mut self.rng).unwrap(),
                rs1: self.src(),
                rs2: self.work(),
                body: self.body(3),
            }
        } else if roll < cuts[4] {
            Block::Loop {
                count: self.rng.gen_range(1..=5u8),
                body: self.body(4),
            }
        } else {
            Block::Call {
                body: self.body(3),
            }
        }
    }
}

fn load_store_align(mn: &str) -> i32 {
    match mn {
        "lb" | "lbu" | "sb" => 1,
        "lh" | "lhu" | "sh" => 2,
        "lw" | "lwu" | "sw" => 4,
        _ => 8,
    }
}

impl FuzzProgram {
    /// Deterministically generates a program from a seed and profile.
    pub fn generate(seed: u64, profile: Profile) -> FuzzProgram {
        let mut g = Gen {
            rng: StdRng::seed_from_u64(seed),
            profile,
            hot: WORK[0],
        };
        let iters = g.rng.gen_range(2..=10u32);
        let init = WORK
            .iter()
            .map(|&r| {
                let v = if g.rng.gen_bool(0.5) {
                    *INTERESTING.choose(&mut g.rng).unwrap()
                } else {
                    g.rng.gen::<i64>()
                };
                (r, v)
            })
            .collect();
        let n_blocks = g.rng.gen_range(6..=28usize);
        let blocks = (0..n_blocks).map(|_| g.block()).collect();
        FuzzProgram {
            seed,
            profile,
            iters,
            init,
            blocks,
        }
    }

    /// Outer-loop trip count.
    pub fn iters(&self) -> u32 {
        self.iters
    }

    /// Number of generator blocks (the unit the shrinker works in).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Renders the program as parser-compatible assembly text — the corpus
    /// seed format. `parse_asm(asm_text())` is exactly the simulated
    /// program.
    pub fn asm_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# helios-fuzz seed={:#x} profile={} iters={}",
            self.seed,
            self.profile.name(),
            self.iters
        );
        let _ = writeln!(out, "    li s0, {ARENA_BASE}");
        let _ = writeln!(out, "    li s2, {}", ARENA_BASE + ALT_BASE_DELTA);
        let _ = writeln!(out, "    li s1, {}", self.iters);
        for (r, v) in &self.init {
            let _ = writeln!(out, "    li {r}, {v}");
        }
        out.push_str("outer:\n");
        let mut label = 0usize;
        let mut funcs: Vec<Vec<String>> = Vec::new();
        for b in &self.blocks {
            emit_block(b, &mut out, &mut label, &mut funcs);
        }
        out.push_str("    addi s1, s1, -1\n    bnez s1, outer\n");
        // Checksum epilogue: report every work register and two arena words
        // through the write ecall, then halt.
        out.push_str("    li a7, 64\n    ecall\n");
        for r in &WORK[1..] {
            let _ = writeln!(out, "    mv a0, {r}\n    ecall");
        }
        out.push_str("    ld a0, 0(s0)\n    ecall\n    ld a0, 1024(s0)\n    ecall\n    ebreak\n");
        for (k, lines) in funcs.iter().enumerate() {
            let _ = writeln!(out, "fn{k}:");
            for l in lines {
                out.push_str(l);
                out.push('\n');
            }
            out.push_str("    ret\n");
        }
        out
    }

    /// Assembles the program (via [`parse_asm`] on [`FuzzProgram::asm_text`]).
    ///
    /// # Panics
    ///
    /// If the generated text does not parse — a generator bug, reported as
    /// an oracle failure by the campaign's panic containment.
    pub fn program(&self) -> Program {
        parse_asm(&self.asm_text()).expect("generated program parses")
    }

    /// Runs oracles 1–3 on this program.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first oracle violation.
    pub fn check(&self) -> Result<ProgramCheck, String> {
        check_program(&self.program())
    }

    fn with_blocks(&self, blocks: Vec<Block>) -> FuzzProgram {
        FuzzProgram {
            blocks,
            init: self.init.clone(),
            ..*self
        }
    }
}

/// Emits one block as assembly lines. `label` numbers skip/loop labels;
/// `funcs` accumulates generated leaf-function bodies (emitted after the
/// halt).
fn emit_block(b: &Block, out: &mut String, label: &mut usize, funcs: &mut Vec<Vec<String>>) {
    match b {
        Block::Alu { op, rd, rs1, rs2 } => {
            let _ = writeln!(out, "    {op} {rd}, {rs1}, {rs2}");
        }
        Block::AluImm { op, rd, rs1, imm } => {
            let _ = writeln!(out, "    {op} {rd}, {rs1}, {imm}");
        }
        Block::Load { mn, rd, base, off } => {
            let _ = writeln!(out, "    {mn} {rd}, {off}({base})");
        }
        Block::Store { mn, src, base, off } => {
            let _ = writeln!(out, "    {mn} {src}, {off}({base})");
        }
        Block::LoadPair {
            rd1,
            rd2,
            base1,
            base2,
            off,
        } => {
            let _ = writeln!(out, "    ld {rd1}, {off}({base1})");
            let _ = writeln!(out, "    ld {rd2}, {}({base2})", off + 8);
        }
        Block::Gather { mn, reg, src, base } => {
            let _ = writeln!(out, "    andi t2, {src}, {GATHER_MASK}");
            let _ = writeln!(out, "    add t2, t2, {base}");
            let _ = writeln!(out, "    {mn} {reg}, 0(t2)");
        }
        Block::Wide { mn, rd, imm20 } => {
            let _ = writeln!(out, "    {mn} {rd}, {imm20}");
        }
        Block::Fence => out.push_str("    fence\n"),
        Block::Output { src } => {
            let _ = writeln!(out, "    li a7, 64\n    mv a0, {src}\n    ecall");
        }
        Block::SkipIf {
            hoisted,
            kind,
            rs1,
            rs2,
            body,
        } => {
            let l = *label;
            *label += 1;
            if *hoisted && !body.is_empty() {
                // Test hoisted above the first body block: the branch and
                // its producer are non-adjacent (the NCTF shape).
                let _ = writeln!(out, "    sltu t2, {rs1}, {rs2}");
                emit_block(&body[0], out, label, funcs);
                let _ = writeln!(out, "    bnez t2, L{l}");
                for blk in &body[1..] {
                    emit_block(blk, out, label, funcs);
                }
            } else {
                let _ = writeln!(out, "    {kind} {rs1}, {rs2}, L{l}");
                for blk in body {
                    emit_block(blk, out, label, funcs);
                }
            }
            let _ = writeln!(out, "L{l}:");
        }
        Block::Loop { count, body } => {
            let l = *label;
            *label += 1;
            let _ = writeln!(out, "    li s3, {count}\nL{l}:");
            for blk in body {
                emit_block(blk, out, label, funcs);
            }
            let _ = writeln!(out, "    addi s3, s3, -1\n    bnez s3, L{l}");
        }
        Block::Call { body } => {
            let k = funcs.len();
            let _ = writeln!(out, "    call fn{k}");
            let mut lines = String::new();
            let mut sub_label = usize::MAX; // bodies contain no control blocks
            let mut sub_funcs = Vec::new();
            for blk in body {
                emit_block(blk, &mut lines, &mut sub_label, &mut sub_funcs);
            }
            debug_assert!(sub_funcs.is_empty(), "call bodies are leaf-only");
            funcs.push(lines.lines().map(str::to_string).collect());
        }
    }
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

/// Per-program statistics from a passing oracle run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProgramCheck {
    /// Static instruction count.
    pub static_insts: u64,
    /// Dynamic µ-ops retired by the emulator (and committed by every mode).
    pub uops: u64,
}

/// Oracle 1, word level: `decode` must accept-and-roundtrip or reject.
/// (Panic totality is enforced by the campaign's panic containment and by
/// the bounded exhaustive test in `helios-isa`.)
///
/// # Errors
///
/// Describes the word that decoded to something `encode` cannot reproduce.
pub fn check_word(word: u32) -> Result<(), String> {
    match decode(word) {
        Err(_) => Ok(()),
        Ok(inst) => {
            let back = encode(&inst);
            if back == word {
                Ok(())
            } else {
                Err(format!(
                    "word oracle: {word:#010x} decodes to {inst:?} but re-encodes to {back:#010x}"
                ))
            }
        }
    }
}

/// Oracles 1–3 for one assembled program:
///
/// 1. every instruction's encoding roundtrips through `decode`;
/// 2. + 3. for each of the six fusion modes, the pipeline (with the
///         lockstep checker attached) commits exactly the emulator's retired
///         trace with zero invariant violations.
///
/// # Errors
///
/// A human-readable description of the first violation, naming the failing
/// mode where applicable.
pub fn check_program(prog: &Program) -> Result<ProgramCheck, String> {
    check_program_deadline(prog, None)
}

/// [`check_program`] with a wall-clock deadline on each pipeline run. The
/// campaign derives the deadline from [`FuzzConfig::iter_timeout_ms`], so a
/// hung iteration (an accidentally pathological generated program, or a
/// model bug the cycle watchdog cannot see) becomes a reported failure
/// instead of a wedged campaign.
///
/// # Errors
///
/// As [`check_program`]; an expired deadline reports as a
/// `wall-clock timeout` failure naming the mode that overran.
pub fn check_program_deadline(
    prog: &Program,
    deadline: Option<Instant>,
) -> Result<ProgramCheck, String> {
    for (i, inst) in prog.insts.iter().enumerate() {
        let w = encode(inst);
        match decode(w) {
            Ok(d) if d == *inst => {}
            Ok(d) => {
                return Err(format!(
                    "roundtrip oracle: inst {i} {inst:?} encodes to {w:#010x} which decodes to {d:?}"
                ))
            }
            Err(e) => {
                return Err(format!(
                    "roundtrip oracle: inst {i} {inst:?} encodes to {w:#010x} which rejects: {e}"
                ))
            }
        }
    }

    let trace = Trace::record(prog.clone(), FUZZ_FUEL)
        .map_err(|e| format!("functional execution: {e}"))?;
    let budget = trace.len().saturating_mul(64).max(100_000);
    for mode in FusionMode::ALL {
        let mut pipe = Pipeline::new(PipeConfig::with_fusion(mode), trace.replay());
        pipe.attach_checker(trace.replay());
        let stats = pipe
            .try_run_deadline(budget, deadline)
            .map_err(|e| format!("{} pipeline: {e}", mode.name()))?;
        if stats.instructions != trace.len() {
            return Err(format!(
                "{}: committed {} µ-ops but the emulator retired {}",
                mode.name(),
                stats.instructions,
                trace.len()
            ));
        }
    }
    Ok(ProgramCheck {
        static_insts: prog.insts.len() as u64,
        uops: trace.len(),
    })
}

/// [`FuzzProgram::check`] with panic containment: a panic anywhere in the
/// stack (assembler, emulator, pipeline) is an oracle failure, not a crash.
pub fn check_contained(p: &FuzzProgram) -> Result<ProgramCheck, String> {
    check_contained_deadline(p, None)
}

/// [`check_contained`] with a wall-clock deadline (see
/// [`check_program_deadline`]).
///
/// # Errors
///
/// As [`check_contained`].
pub fn check_contained_deadline(
    p: &FuzzProgram,
    deadline: Option<Instant>,
) -> Result<ProgramCheck, String> {
    catch_unwind(AssertUnwindSafe(|| {
        check_program_deadline(&p.program(), deadline)
    }))
    .unwrap_or_else(|e| Err(format!("panic: {}", panic_message(&*e))))
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

/// Upper bound on predicate evaluations per shrink (each evaluation re-runs
/// the oracles, so the bound caps minimization wall-clock).
const SHRINK_BUDGET: usize = 2000;

/// Delta-debug minimization: returns the smallest variant of `orig` (fewest
/// blocks, then fewest outer iterations) for which `fails` still returns
/// `true`. `fails(orig)` must hold on entry.
///
/// The pass alternates three reductions to a fixpoint (or budget):
/// iteration-count reduction, classic ddmin chunk removal over the block
/// list, and flattening of control blocks into their bodies.
pub fn shrink<F: FnMut(&FuzzProgram) -> bool>(orig: &FuzzProgram, mut fails: F) -> FuzzProgram {
    let mut cur = orig.clone();
    let mut budget = SHRINK_BUDGET;
    let mut try_candidate = |cand: &FuzzProgram, budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        fails(cand)
    };

    // Fewer outer iterations first: cheaper oracle runs for everything below.
    for it in [1u32, 2, 4] {
        if it < cur.iters {
            let mut cand = cur.clone();
            cand.iters = it;
            if try_candidate(&cand, &mut budget) {
                cur = cand;
                break;
            }
        }
    }

    loop {
        let mut progressed = false;

        // ddmin over the block list.
        let mut chunk = (cur.blocks.len() / 2).max(1);
        'dd: loop {
            let mut start = 0;
            while start < cur.blocks.len() {
                let end = (start + chunk).min(cur.blocks.len());
                if end - start < cur.blocks.len() {
                    let mut blocks = cur.blocks.clone();
                    blocks.drain(start..end);
                    let cand = cur.with_blocks(blocks);
                    if try_candidate(&cand, &mut budget) {
                        cur = cand;
                        progressed = true;
                        continue 'dd;
                    }
                }
                start += chunk;
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }

        // Flatten control blocks into their bodies.
        let mut i = 0;
        while i < cur.blocks.len() {
            if let Some(body) = cur.blocks[i].body() {
                let mut blocks = cur.blocks.clone();
                let body: Vec<Block> = body.to_vec();
                blocks.splice(i..=i, body);
                let cand = cur.with_blocks(blocks);
                if try_candidate(&cand, &mut budget) {
                    cur = cand;
                    progressed = true;
                    continue; // same index now holds the first body block
                }
            }
            i += 1;
        }

        if !progressed || budget == 0 {
            break;
        }
    }
    cur
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// Configuration of one fuzz campaign.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Master seed; per-program seeds are derived by index.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub iters: u64,
    /// Fixed profile, or `None` to rotate through [`Profile::ALL`].
    pub profile: Option<Profile>,
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Suppress the progress line on stderr.
    pub quiet: bool,
    /// Wall-clock budget per iteration's oracle runs, in milliseconds
    /// (`None` = unbounded). A hung iteration becomes a reported failure
    /// instead of a wedged campaign. The default (30 000 ms) is ~3 orders
    /// of magnitude above a normal iteration, so summaries stay
    /// deterministic on any plausibly-loaded host.
    pub iter_timeout_ms: Option<u64>,
}

impl FuzzConfig {
    /// A campaign with default jobs (every core), rotating profiles.
    pub fn new(seed: u64, iters: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            iters,
            profile: None,
            jobs: default_jobs(),
            quiet: false,
            iter_timeout_ms: Some(30_000),
        }
    }
}

/// One minimized oracle failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuzzFailure {
    /// Campaign iteration index.
    pub index: u64,
    /// Derived per-program seed (regenerates the unminimized program).
    pub seed: u64,
    /// Generation profile.
    pub profile: Profile,
    /// Description of the oracle violation.
    pub message: String,
    /// Minimized reproducer in corpus (`.s`) format; empty for word-level
    /// failures (the offending word is in `message` — add it to the corpus
    /// `words.txt` instead).
    pub minimized: String,
}

/// Deterministic summary of a campaign. Independent of `jobs`, so equality
/// across runs is the reproducibility check.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CampaignSummary {
    /// Programs generated and checked.
    pub programs: u64,
    /// Total static instructions across all programs.
    pub static_insts: u64,
    /// Total dynamic µ-ops retired by the emulator (each replayed through
    /// all six pipeline configurations).
    pub uops: u64,
    /// Random words screened by the word-level ISA oracle.
    pub words: u64,
    /// Programs per profile, in [`Profile::ALL`] order.
    pub per_profile: [u64; 3],
    /// Every failure, minimized, in iteration order. Empty means the
    /// campaign is clean.
    pub failures: Vec<FuzzFailure>,
}

/// splitmix64-style per-iteration seed derivation: decorrelates programs
/// while keeping every iteration reproducible in isolation.
fn derive_seed(seed: u64, i: u64) -> u64 {
    let mut z = seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs a fuzz campaign: `iters` programs through all three oracles on a
/// worker pool, shrinking every failure. The summary (including the failure
/// list) is byte-identical for a given (`seed`, `iters`, `profile`)
/// regardless of `jobs`.
pub fn run_campaign(cfg: FuzzConfig) -> CampaignSummary {
    let jobs = cfg.jobs.clamp(1, cfg.iters.max(1) as usize);
    let next = AtomicUsize::new(0);
    let programs = AtomicU64::new(0);
    let static_insts = AtomicU64::new(0);
    let uops = AtomicU64::new(0);
    let words = AtomicU64::new(0);
    let per_profile: [AtomicU64; 3] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
    let failures: Mutex<Vec<FuzzFailure>> = Mutex::new(Vec::new());
    let reporter = Progress::new(cfg.iters as usize);

    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as u64;
                if i >= cfg.iters {
                    break;
                }
                let pseed = derive_seed(cfg.seed, i);
                let profile = cfg
                    .profile
                    .unwrap_or(Profile::ALL[(i % Profile::ALL.len() as u64) as usize]);
                let pi = Profile::ALL.iter().position(|&p| p == profile).unwrap();

                // Oracle 1: a batch of random words per iteration.
                let mut wrng = StdRng::seed_from_u64(pseed ^ 0x5eed_0001);
                let mut failure: Option<FuzzFailure> = None;
                for _ in 0..WORDS_PER_PROGRAM {
                    let w: u32 = wrng.gen();
                    let res = catch_unwind(AssertUnwindSafe(|| check_word(w)))
                        .unwrap_or_else(|e| Err(format!("decode panic on {w:#010x}: {}", panic_message(&*e))));
                    if let Err(message) = res {
                        failure = Some(FuzzFailure {
                            index: i,
                            seed: pseed,
                            profile,
                            message,
                            minimized: String::new(),
                        });
                        break;
                    }
                }
                words.fetch_add(WORDS_PER_PROGRAM, Ordering::Relaxed);

                // Oracles 2 + 3 on a generated program, under the
                // per-iteration wall-clock guard.
                if failure.is_none() {
                    let deadline = cfg
                        .iter_timeout_ms
                        .map(|ms| Instant::now() + Duration::from_millis(ms));
                    let prog = FuzzProgram::generate(pseed, profile);
                    match check_contained_deadline(&prog, deadline) {
                        Ok(c) => {
                            static_insts.fetch_add(c.static_insts, Ordering::Relaxed);
                            uops.fetch_add(c.uops, Ordering::Relaxed);
                        }
                        Err(message) => {
                            // A wall-clock timeout is not a minimizable
                            // oracle violation: shrinking would re-run the
                            // hung program SHRINK_BUDGET times.
                            let minimized = if message.contains("wall-clock timeout") {
                                String::new()
                            } else {
                                shrink(&prog, |p| check_contained(p).is_err()).asm_text()
                            };
                            failure = Some(FuzzFailure {
                                index: i,
                                seed: pseed,
                                profile,
                                message,
                                minimized,
                            });
                        }
                    }
                }

                programs.fetch_add(1, Ordering::Relaxed);
                per_profile[pi].fetch_add(1, Ordering::Relaxed);
                if let Some(f) = failure {
                    failures.lock().unwrap().push(f);
                }
                if !cfg.quiet {
                    reporter.item_done(profile.name(), &format!("seed {pseed:#x}"));
                }
            });
        }
    });
    if !cfg.quiet {
        reporter.finish("fuzz campaign");
    }

    let mut failures = failures.into_inner().unwrap();
    failures.sort_by_key(|f| f.index);
    CampaignSummary {
        programs: programs.into_inner(),
        static_insts: static_insts.into_inner(),
        uops: uops.into_inner(),
        words: words.into_inner(),
        per_profile: [
            per_profile[0].load(Ordering::Relaxed),
            per_profile[1].load(Ordering::Relaxed),
            per_profile[2].load(Ordering::Relaxed),
        ],
        failures,
    }
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

/// Replays every committed corpus seed under `dir`:
///
/// * `*.s` — assembled with [`parse_asm`] and run through
///   [`check_program`] (oracles 1–3, panic-contained);
/// * `words.txt` — one hex word per line (`#` comments), each through
///   [`check_word`].
///
/// Returns `(name, failure)` per seed — `None` failure means it passed.
///
/// # Errors
///
/// I/O problems reading the corpus directory (a missing directory is an
/// error: a corpus silently replaying nothing would defeat its purpose).
pub fn replay_corpus(dir: impl AsRef<Path>) -> std::io::Result<Vec<(String, Option<String>)>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        match path.extension().and_then(|e| e.to_str()) {
            Some("s") => {
                let text = std::fs::read_to_string(&path)?;
                let res = catch_unwind(AssertUnwindSafe(|| match parse_asm(&text) {
                    Ok(p) => check_program(&p).map(|_| ()),
                    Err(e) => Err(format!("parse: {e}")),
                }))
                .unwrap_or_else(|e| Err(format!("panic: {}", panic_message(&*e))));
                out.push((name, res.err()));
            }
            Some("txt") => {
                let text = std::fs::read_to_string(&path)?;
                let mut failure = None;
                for (ln, line) in text.lines().enumerate() {
                    let line = line.split('#').next().unwrap_or("").trim();
                    if line.is_empty() {
                        continue;
                    }
                    let word = u32::from_str_radix(line.trim_start_matches("0x"), 16);
                    let res = match word {
                        Ok(w) => catch_unwind(AssertUnwindSafe(|| check_word(w)))
                            .unwrap_or_else(|e| Err(format!("panic: {}", panic_message(&*e)))),
                        Err(_) => Err(format!("line {}: bad word `{line}`", ln + 1)),
                    };
                    if let Err(m) = res {
                        failure = Some(m);
                        break;
                    }
                }
                out.push((name, failure));
            }
            _ => {} // README etc.
        }
    }
    Ok(out)
}
