//! A minimal JSON value and recursive-descent parser.
//!
//! The reporting path emits JSON (`helios_uarch::StatsRegistry::to_json`,
//! [`crate::Report::to_json`]); this module closes the loop so round-trip
//! tests and tooling can *read* those artifacts without adding a
//! dependency. It handles exactly the JSON the emitters produce (objects,
//! arrays, strings with escapes, numbers, booleans, null) plus arbitrary
//! whitespace.
//!
//! # Examples
//!
//! ```
//! use helios::Json;
//! let v = Json::parse(r#"{"schema": "helios-stats-v1", "stats": [1, 2.5]}"#)?;
//! assert_eq!(v.get("schema").and_then(Json::as_str), Some("helios-stats-v1"));
//! assert_eq!(v.get("stats").and_then(Json::as_array).map(<[Json]>::len), Some(2));
//! # Ok::<(), helios::JsonError>(())
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. `u64` counters up to 2^53 survive the round-trip exactly.
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (keys are not deduplicated).
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What the parser expected or found.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Json {
    /// Serializes the value as compact JSON (no added whitespace), the
    /// inverse of [`Json::parse`]: `Json::parse(&v.to_string()) == Ok(v)`
    /// for every finite value. Numbers that are exact integers within the
    /// `f64`-exact window (±2^53) render without a decimal point, so `u64`
    /// counters survive the round-trip byte-identically; non-finite numbers
    /// (which JSON cannot represent) render as `null`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(n) if !n.is_finite() => f.write_str("null"),
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => {
                write!(f, "{}", *n as i64)
            }
            Json::Num(n) => write!(f, "{n:?}"),
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not produced by our emitters;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so byte
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.b.len() && (self.b[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = Json::parse(r#"{"a": [1, -2.5, true, false, null], "b": {"c": "x\ny"}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2], Json::Bool(true));
        assert_eq!(a[4], Json::Null);
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(Json::as_str),
            Some("x\ny")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips() {
        let original = "quote\" slash\\ nl\n tab\t ctl\u{1}";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(original));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let doc = r#"{"a":[1,-2.5,true,false,null],"b":{"c":"x\ny"},"big":9007199254740992}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.to_string(), doc, "compact form is canonical");
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        // Integers stay integers; NaN (unrepresentable) degrades to null.
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(1.5e300).to_string(), "1.5e300");
        let tricky = Json::Str("quote\" nl\n ctl\u{1}".into());
        assert_eq!(Json::parse(&tricky.to_string()).unwrap(), tricky);
    }

    #[test]
    fn u64_exactness_window() {
        assert_eq!(Json::parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(Json::parse("2.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
