//! # helios — experiment harness for the Helios fusion reproduction
//!
//! Ties the stack together: assemble a workload (`helios-workloads`), execute
//! it functionally (`helios-emu`), replay it through the cycle-level
//! out-of-order model (`helios-uarch`) under one of the paper's five fusion
//! configurations (`helios-core`), and report the statistics behind every
//! table and figure of *"Exploring Instruction Fusion Opportunities in
//! General Purpose Processors"* (MICRO 2022).
//!
//! # Examples
//!
//! ```
//! use helios::{run_workload, FusionMode};
//!
//! let w = helios_workloads::workload("crc32").expect("registered");
//! let base = run_workload(&w, FusionMode::NoFusion);
//! let fused = run_workload(&w, FusionMode::CsfSbr);
//! assert_eq!(base.instructions, fused.instructions);
//! ```

mod experiment;
mod metrics;
mod report;

pub use experiment::{
    default_jobs, run_recorded, run_sweep, run_sweep_jobs, run_workload, run_workload_with,
    RunResult, Sweep,
};
pub use metrics::{geomean, normalized_ipc, speedup_pct};
pub use report::{format_row, Table};

pub use helios_core::{FusionMode, HeliosParams};
pub use helios_emu::{RecordedTrace, UopSource};
pub use helios_uarch::{PipeConfig, SimStats};
pub use helios_workloads::{all_workloads, workload, Workload};
