//! # helios — experiment harness for the Helios fusion reproduction
//!
//! Ties the stack together: assemble a workload (`helios-workloads`), execute
//! it functionally (`helios-emu`), replay it through the cycle-level
//! out-of-order model (`helios-uarch`) under one of the paper's five fusion
//! configurations (`helios-core`), and report the statistics behind every
//! table and figure of *"Exploring Instruction Fusion Opportunities in
//! General Purpose Processors"* (MICRO 2022).
//!
//! # Examples
//!
//! ```
//! use helios::{FusionMode, SimRequest};
//!
//! let w = helios_workloads::workload("crc32").expect("registered");
//! let base = SimRequest::mode(&w, FusionMode::NoFusion).run().stats;
//! let fused = SimRequest::mode(&w, FusionMode::CsfSbr).run().stats;
//! assert_eq!(base.instructions, fused.instructions);
//! ```

mod experiment;
pub mod fuzz;
mod json;
mod metrics;
mod report;

pub use experiment::{
    default_jobs, run_sweep, run_sweep_jobs, Progress, RunResult, SimRequest, SimRun, Sweep,
};
pub use json::{Json, JsonError};
pub use metrics::{geomean, normalized_ipc, speedup_pct};
pub use report::{format_row, results_dir, Report, Table};

pub use helios_core::{FusionMode, HeliosParams};
pub use helios_emu::{RecordedTrace, UopSource};
pub use helios_uarch::{
    ConfigError, Histogram, ObsOpts, Observer, PipeConfig, PipeConfigBuilder, SimStats,
    StatEntry, StatValue, StatsRegistry, Unit, UopRec,
};
pub use helios_workloads::{all_workloads, workload, Workload};
