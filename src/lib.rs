//! # helios — experiment harness for the Helios fusion reproduction
//!
//! Ties the stack together: assemble a workload (`helios-workloads`), execute
//! it functionally (`helios-emu`), replay it through the cycle-level
//! out-of-order model (`helios-uarch`) under one of the paper's five fusion
//! configurations (`helios-core`), and report the statistics behind every
//! table and figure of *"Exploring Instruction Fusion Opportunities in
//! General Purpose Processors"* (MICRO 2022).
//!
//! # Examples
//!
//! ```
//! use helios::{FusionMode, SimRequest};
//!
//! let w = helios_workloads::workload("crc32").expect("registered");
//! let base = SimRequest::mode(&w, FusionMode::NoFusion).run().stats;
//! let fused = SimRequest::mode(&w, FusionMode::CsfSbr).run().stats;
//! assert_eq!(base.instructions, fused.instructions);
//! ```

mod experiment;
pub mod fuzz;
mod json;
mod metrics;
mod report;

pub use experiment::{
    default_jobs, install_interrupt_handler, panic_message, run_sweep, run_sweep_jobs,
    run_sweep_opts, sweep_interrupted, CellOutcome, CellReport, Checkpoint, Progress, RunResult,
    SimRequest, SimRun, Sweep, SweepOptions, SweepPolicy,
};
pub use json::{Json, JsonError};
pub use metrics::{geomean, normalized_ipc, speedup_pct};
pub use report::{format_row, results_dir, Report, Table};

pub use helios_core::{FusionMode, HeliosParams};
pub use helios_emu::{
    BlockReplay, RecordedTrace, Replay, StoreError, StoreStats, Trace, TraceIoError, TraceStamp,
    TraceStore, UopSource,
};
pub use helios_uarch::{
    CellChaos, CellFault, ConfigError, Histogram, ObsOpts, Observer, PipeConfig,
    PipeConfigBuilder, SimError, SimStats, StatEntry, StatValue, StatsRegistry, Unit, UopRec,
};

/// Process exit codes shared by every figure/table binary, so scripts and CI
/// can distinguish how a sweep ended without parsing output.
pub mod exit {
    /// Every cell simulated successfully.
    pub const COMPLETE: i32 = 0;
    /// No cell produced statistics (e.g. every cell quarantined).
    pub const FAILED: i32 = 1;
    /// Malformed command line.
    pub const USAGE: i32 = 2;
    /// Some cells were quarantined (failed or timed out); the rest completed
    /// and were reported.
    pub const PARTIAL: i32 = 3;
    /// The sweep was interrupted (SIGINT or a stop-after cap) before every
    /// cell was attempted; finished cells are in the checkpoint journal.
    pub const INTERRUPTED: i32 = 130;
}
pub use helios_workloads::{all_workloads, workload, Workload};
