//! Aggregation helpers used by the paper's figures.

/// Geometric mean (the paper's average for IPC improvements).
///
/// Returns 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert!((helios::geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// IPC of `x` normalized to `baseline`.
pub fn normalized_ipc(x: f64, baseline: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        x / baseline
    }
}

/// Speedup of `x` over `baseline`, in percent (paper-style "+14.2%").
pub fn speedup_pct(x: f64, baseline: f64) -> f64 {
    (normalized_ipc(x, baseline) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_properties() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        // Order-invariant.
        assert!((geomean(&[1.5, 0.5, 2.0]) - geomean(&[2.0, 1.5, 0.5])).abs() < 1e-12);
    }

    #[test]
    fn speedups() {
        assert!((speedup_pct(1.142, 1.0) - 14.2).abs() < 1e-9);
        assert_eq!(speedup_pct(1.0, 0.0), -100.0);
        assert!((normalized_ipc(3.0, 2.0) - 1.5).abs() < 1e-12);
    }
}
