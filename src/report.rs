//! Report description and rendering for the figure/table regeneration
//! binaries: one [`Report`] yields the text the binary prints *and* the
//! machine-readable JSON/CSV artifacts committed under `results/`.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// A fixed-width text table.
///
/// # Examples
///
/// ```
/// use helios::Table;
/// let mut t = Table::new(vec!["bench".into(), "IPC".into()]);
/// t.row(vec!["crc32".into(), "2.31".into()]);
/// let s = t.to_string();
/// assert!(s.contains("crc32"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are right-padded with blanks).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, &w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "  {cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            print_row(f, r)?;
        }
        Ok(())
    }
}

/// Formats a numeric row: name followed by fixed-precision values.
pub fn format_row(name: &str, values: &[f64], precision: usize) -> Vec<String> {
    let mut row = vec![name.to_string()];
    row.extend(values.iter().map(|v| format!("{v:.precision$}")));
    row
}

/// One figure/table's complete output: identifier, title, data table, and
/// trailing notes (the "paper says" comparison lines). Every regeneration
/// binary builds a `Report` and renders it three ways:
///
/// * [`print`](Report::print) — the human text on stdout (byte-identical to
///   the historical hand-formatted output);
/// * [`emit`](Report::emit) — `<id>.json` + `<id>.csv` under the results
///   directory (`$HELIOS_RESULTS_DIR`, default `results/`).
///
/// # Examples
///
/// ```
/// use helios::{Report, Table};
/// let mut t = Table::new(vec!["bench".into(), "IPC".into()]);
/// t.row(vec!["crc32".into(), "2.31".into()]);
/// let mut r = Report::new("fig00", "Figure 0: demo", t);
/// r.note("paper: n/a");
/// assert!(r.to_text().starts_with("Figure 0: demo\nbench"));
/// assert!(r.to_json().contains("\"helios-report-v1\""));
/// ```
#[derive(Clone, Debug)]
pub struct Report {
    id: String,
    title: String,
    table: Table,
    notes: Vec<String>,
    /// Per-cell abnormal statuses (`"workload/mode"` → description) from a
    /// partial sweep. Empty on a clean run — and then absent from the JSON,
    /// keeping clean artifacts byte-identical to pre-resilience ones.
    cell_status: Vec<(String, String)>,
}

impl Report {
    /// Creates a report. `id` names the artifact files (`results/<id>.json`);
    /// `title` is the first stdout line. A table with no headers and no rows
    /// (`Table::new(vec![])`) produces a notes-only report (Table II style).
    pub fn new(id: impl Into<String>, title: impl Into<String>, table: Table) -> Report {
        Report {
            id: id.into(),
            title: title.into(),
            table,
            notes: Vec::new(),
            cell_status: Vec::new(),
        }
    }

    /// Records one abnormal cell (`"workload/mode"` plus a one-line status)
    /// from a partial sweep; shows up in the JSON `cell_status` object.
    pub fn cell_status(&mut self, cell: impl Into<String>, status: impl Into<String>) -> &mut Report {
        self.cell_status.push((cell.into(), status.into()));
        self
    }

    /// The recorded abnormal cells.
    pub fn cell_statuses(&self) -> &[(String, String)] {
        &self.cell_status
    }

    /// Appends one stdout line after the table. Multi-line strings are
    /// split so JSON/CSV consumers see one note per line.
    pub fn note(&mut self, line: impl Into<String>) -> &mut Report {
        let line = line.into();
        self.notes.extend(line.split('\n').map(str::to_string));
        self
    }

    /// The artifact identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The human-readable text: title, table (when non-empty) followed by a
    /// blank line, then the notes — exactly what the binaries historically
    /// printed via `println!(title); println!("{table}"); println!(note)`.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.title);
        s.push('\n');
        if !(self.table.headers.is_empty() && self.table.rows.is_empty()) {
            s.push_str(&self.table.to_string());
            s.push('\n');
        }
        for n in &self.notes {
            s.push_str(n);
            s.push('\n');
        }
        s
    }

    /// Prints [`to_text`](Report::to_text) to stdout.
    pub fn print(&self) {
        print!("{}", self.to_text());
    }

    /// The machine-readable JSON document (`helios-report-v1`). Cells are
    /// emitted as the formatted strings the text table shows, so the JSON is
    /// exactly as precise as the committed `.txt` and never diverges from it.
    pub fn to_json(&self) -> String {
        let esc = crate::json::escape;
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"helios-report-v1\",\n");
        s.push_str(&format!("  \"id\": \"{}\",\n", esc(&self.id)));
        s.push_str(&format!("  \"title\": \"{}\",\n", esc(&self.title)));
        let strings = |items: &[String]| {
            items
                .iter()
                .map(|c| format!("\"{}\"", esc(c)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        s.push_str(&format!("  \"columns\": [{}],\n", strings(&self.table.headers)));
        s.push_str("  \"rows\": [");
        for (i, r) in self.table.rows.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    [{}]", strings(r)));
        }
        s.push_str(if self.table.rows.is_empty() { "],\n" } else { "\n  ],\n" });
        s.push_str("  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    \"{}\"", esc(n)));
        }
        s.push_str(if self.notes.is_empty() { "]" } else { "\n  ]" });
        // Only partial sweeps carry cell statuses; clean reports stay
        // byte-identical to the historical schema.
        if !self.cell_status.is_empty() {
            s.push_str(",\n  \"cell_status\": {");
            for (i, (cell, status)) in self.cell_status.iter().enumerate() {
                s.push_str(if i == 0 { "\n" } else { ",\n" });
                s.push_str(&format!("    \"{}\": \"{}\"", esc(cell), esc(status)));
            }
            s.push_str("\n  }");
        }
        s.push_str("\n}\n");
        s
    }

    /// Rebuilds a [`Report`] from a `helios-report-v1` JSON document — the
    /// inverse of [`Report::to_json`]: `from_json(&r.to_json())` reproduces
    /// `r` exactly, so a report can cross a process or network boundary (the
    /// sweep server serves this wire format) and re-emit byte-identical
    /// artifacts on the other side.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first structural problem: a parse
    /// failure, a missing or unsupported schema tag, or a malformed section.
    pub fn from_json(text: &str) -> Result<Report, String> {
        let v = crate::Json::parse(text).map_err(|e| e.to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(crate::Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string \"{key}\""))
        };
        let schema = str_field("schema")?;
        if schema != "helios-report-v1" {
            return Err(format!("unsupported report schema {schema:?}"));
        }
        let strings = |val: &crate::Json, what: &str| -> Result<Vec<String>, String> {
            val.as_array()
                .ok_or_else(|| format!("\"{what}\" is not an array"))?
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("non-string entry in \"{what}\""))
                })
                .collect()
        };
        let section =
            |key: &'static str| v.get(key).ok_or_else(|| format!("missing \"{key}\""));
        let mut table = Table::new(strings(section("columns")?, "columns")?);
        for row in section("rows")?
            .as_array()
            .ok_or("\"rows\" is not an array")?
        {
            table.row(strings(row, "rows")?);
        }
        let mut report = Report::new(str_field("id")?, str_field("title")?, table);
        // Notes were already split at newlines when emitted; push them back
        // verbatim rather than through `note()` so identity is exact.
        report.notes = strings(section("notes")?, "notes")?;
        if let Some(cs) = v.get("cell_status") {
            for (cell, status) in cs.as_object().ok_or("\"cell_status\" is not an object")? {
                let status = status
                    .as_str()
                    .ok_or("non-string entry in \"cell_status\"")?;
                report.cell_status(cell.clone(), status);
            }
        }
        Ok(report)
    }

    /// The CSV rendering: header row then data rows (notes are JSON-only).
    pub fn to_csv(&self) -> String {
        let quote = |c: &String| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut s = String::new();
        let line = |cells: &[String]| cells.iter().map(quote).collect::<Vec<_>>().join(",");
        if !self.table.headers.is_empty() {
            s.push_str(&line(&self.table.headers));
            s.push('\n');
        }
        for r in &self.table.rows {
            s.push_str(&line(r));
            s.push('\n');
        }
        s
    }

    /// Writes `<id>.json` and `<id>.csv` into [`results_dir`], creating it
    /// if needed, and logs the destination on stderr.
    pub fn emit(&self) -> io::Result<()> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        std::fs::write(dir.join(format!("{}.json", self.id)), self.to_json())?;
        std::fs::write(dir.join(format!("{}.csv", self.id)), self.to_csv())?;
        eprintln!("wrote {}/{}.{{json,csv}}", dir.display(), self.id);
        Ok(())
    }

    /// [`print`](Report::print) + [`emit`](Report::emit), downgrading an
    /// emission failure (e.g. read-only checkout) to a stderr warning so the
    /// figure text is never lost to an artifact problem.
    pub fn print_and_emit(&self) {
        self.print();
        if let Err(e) = self.emit() {
            eprintln!("warning: could not write {} artifacts: {e}", self.id);
        }
    }
}

/// The directory report artifacts land in: `$HELIOS_RESULTS_DIR` when set
/// (CI points it at a scratch dir so quick runs never clobber the committed
/// full-run artifacts), else `results/` relative to the working directory.
pub fn results_dir() -> PathBuf {
    std::env::var_os("HELIOS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name".into(), "v".into()]);
        t.row(vec!["a-long-name".into(), "1.00".into()]);
        t.row(vec!["b".into(), "12.34".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a-long-name"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn format_row_precision() {
        let r = format_row("x", &[1.23456, 2.0], 2);
        assert_eq!(r, vec!["x", "1.23", "2.00"]);
    }

    #[test]
    fn report_text_matches_historical_println_pattern() {
        // println!(title); println!("{table}"); println!(note) — the table's
        // Display ends with '\n', so the extra println leaves a blank line.
        let mut t = Table::new(vec!["b".into(), "v".into()]);
        t.row(vec!["crc32".into(), "1.000".into()]);
        let mut r = Report::new("figX", "Figure X: demo", t.clone());
        r.note("paper: line one\nline two");
        let expected = format!("Figure X: demo\n{t}\npaper: line one\nline two\n");
        assert_eq!(r.to_text(), expected);
    }

    #[test]
    fn notes_only_report_skips_the_table() {
        let mut r = Report::new("t2", "Table II: config", Table::new(vec![]));
        r.note("  width : 8");
        assert_eq!(r.to_text(), "Table II: config\n  width : 8\n");
        assert_eq!(r.to_csv(), "");
    }

    #[test]
    fn report_json_parses_and_round_trips() {
        let mut t = Table::new(vec!["bench".into(), "IPC".into()]);
        t.row(vec!["has,comma".into(), "1.5".into()]);
        let mut r = Report::new("figY", "Figure \"Y\"", t);
        r.note("a note");
        let v = crate::Json::parse(&r.to_json()).expect("emitted JSON parses");
        assert_eq!(v.get("schema").and_then(crate::Json::as_str), Some("helios-report-v1"));
        assert_eq!(v.get("title").and_then(crate::Json::as_str), Some("Figure \"Y\""));
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[0].as_str(), Some("has,comma"));
        assert!(r.to_csv().starts_with("bench,IPC\n\"has,comma\",1.5\n"));
    }

    #[test]
    fn from_json_reproduces_the_document_byte_identically() {
        let mut t = Table::new(vec!["bench".into(), "IPC".into()]);
        t.row(vec!["crc32".into(), "1.500".into()]);
        t.row(vec!["has,comma\"quote".into(), "2.000".into()]);
        let mut r = Report::new("figR", "Figure R: round trip", t);
        r.note("first\nsecond");
        r.cell_status("fft/NoFusion", "timed out after 1000 ms");
        let doc = r.to_json();
        let back = Report::from_json(&doc).expect("round trip parses");
        assert_eq!(back.to_json(), doc, "lossless across the wire format");
        assert_eq!(back.to_text(), r.to_text());
        assert_eq!(back.to_csv(), r.to_csv());
        assert_eq!(back.id(), "figR");

        // Notes-only reports (empty table) round-trip too.
        let empty = Report::new("t2", "Table II", Table::new(vec![]));
        assert_eq!(Report::from_json(&empty.to_json()).unwrap().to_json(), empty.to_json());
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        assert!(Report::from_json("not json").is_err());
        assert!(Report::from_json("{}").is_err(), "missing schema");
        assert!(
            Report::from_json(r#"{"schema":"helios-stats-v1"}"#)
                .unwrap_err()
                .contains("unsupported report schema"),
        );
        assert!(
            Report::from_json(
                r#"{"schema":"helios-report-v1","id":"x","title":"t","columns":[1],"rows":[],"notes":[]}"#
            )
            .unwrap_err()
            .contains("non-string"),
        );
    }

    #[test]
    fn cell_status_absent_when_clean_present_when_partial() {
        let mut t = Table::new(vec!["b".into(), "v".into()]);
        t.row(vec!["crc32".into(), "1.0".into()]);
        let clean = Report::new("figZ", "Fig Z", t.clone());
        assert!(!clean.to_json().contains("cell_status"));

        let mut partial = Report::new("figZ", "Fig Z", t);
        partial.cell_status("bitcount/Helios", "failed after 2 attempt(s): boom");
        let v = crate::Json::parse(&partial.to_json()).unwrap();
        assert_eq!(
            v.get("cell_status").and_then(|c| c.get("bitcount/Helios")).and_then(crate::Json::as_str),
            Some("failed after 2 attempt(s): boom")
        );
        // Identical except for the added section.
        assert_eq!(
            partial.to_json().replace(
                ",\n  \"cell_status\": {\n    \"bitcount/Helios\": \"failed after 2 attempt(s): boom\"\n  }",
                ""
            ),
            clean.to_json()
        );
    }

    #[test]
    fn ragged_rows_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["only".into()]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.contains("only"));
    }
}
