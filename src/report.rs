//! Plain-text table formatting for the figure/table regeneration binaries.

use std::fmt;

/// A fixed-width text table.
///
/// # Examples
///
/// ```
/// use helios::Table;
/// let mut t = Table::new(vec!["bench".into(), "IPC".into()]);
/// t.row(vec!["crc32".into(), "2.31".into()]);
/// let s = t.to_string();
/// assert!(s.contains("crc32"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Table {
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are right-padded with blanks).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self
            .headers
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, &w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "  {cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        print_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for r in &self.rows {
            print_row(f, r)?;
        }
        Ok(())
    }
}

/// Formats a numeric row: name followed by fixed-precision values.
pub fn format_row(name: &str, values: &[f64], precision: usize) -> Vec<String> {
    let mut row = vec![name.to_string()];
    row.extend(values.iter().map(|v| format!("{v:.precision$}")));
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["name".into(), "v".into()]);
        t.row(vec!["a-long-name".into(), "1.00".into()]);
        t.row(vec!["b".into(), "12.34".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a-long-name"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn format_row_precision() {
        let r = format_row("x", &[1.23456, 2.0], 2);
        assert_eq!(r, vec!["x", "1.23", "2.00"]);
    }

    #[test]
    fn ragged_rows_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["only".into()]);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 1);
        let s = t.to_string();
        assert!(s.contains("only"));
    }
}
