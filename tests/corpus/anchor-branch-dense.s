# helios-fuzz seed=0xc0ffee profile=branch-dense iters=6
    li s0, 2097152
    li s2, 2097416
    li s1, 6
    li a0, -1107165659382598021
    li a1, -9223372036854775807
    li a2, -2
    li a3, 1699251194911989061
    li a4, -2
    li a5, 6933574927371491229
    li t0, -2763918107230889293
    li t1, 6022567139404528866
outer:
    srl a1, a1, t0
    div a5, a5, a5
    divu t1, t1, a4
    sltiu a1, a1, -1829
    lbu a1, 726(s0)
    xori a5, t0, 545
    ld t1, 1936(s2)
    ld t1, 1944(s2)
    sltu t2, t1, t1
    srl t0, a2, a4
    bnez t2, L0
    mul a5, a5, a3
L0:
    sb a5, 619(s0)
    div a5, a5, a4
    andi a1, a1, 501
    mulhsu t1, a4, a0
    srli a4, a4, 57
    call fn0
    sd a2, 656(s2)
    andi t2, t1, 2040
    add t2, t2, s0
    sw a5, 0(t2)
    addi s1, s1, -1
    bnez s1, outer
    li a7, 64
    ecall
    mv a0, a1
    ecall
    mv a0, a2
    ecall
    mv a0, a3
    ecall
    mv a0, a4
    ecall
    mv a0, a5
    ecall
    mv a0, t0
    ecall
    mv a0, t1
    ecall
    ld a0, 0(s0)
    ecall
    ld a0, 1024(s0)
    ecall
    ebreak
fn0:
    slliw a3, a4, 18
    and a5, a5, a0
    ret
