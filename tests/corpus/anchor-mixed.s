# helios-fuzz seed=0xc0ffee profile=mixed iters=6
    li s0, 2097152
    li s2, 2097416
    li s1, 6
    li a0, -1107165659382598021
    li a1, -9223372036854775807
    li a2, -2
    li a3, 1699251194911989061
    li a4, -2
    li a5, 6933574927371491229
    li t0, -2763918107230889293
    li t1, 6022567139404528866
outer:
    srl a1, a1, t0
    div a5, a5, a5
    slliw a3, a4, 31
    lb a3, 1234(s0)
    bgeu a3, t1, L0
    sll a2, a2, a5
L0:
    li s3, 3
L1:
    auipc t1, 180287
    lui t1, 411275
    addi s3, s3, -1
    bnez s3, L1
    sltu t2, t1, t1
    slt a2, t1, a3
    bnez t2, L2
    slli a3, a5, 29
L2:
    ld a3, 24(s0)
    ld a1, 32(s0)
    sw t0, 984(s0)
    andi t2, a5, 2040
    add t2, t2, s0
    sh a5, 0(t2)
    mulh t1, a4, a5
    call fn0
    auipc a0, 311634
    call fn1
    xor t0, a1, a4
    call fn2
    addi s1, s1, -1
    bnez s1, outer
    li a7, 64
    ecall
    mv a0, a1
    ecall
    mv a0, a2
    ecall
    mv a0, a3
    ecall
    mv a0, a4
    ecall
    mv a0, a5
    ecall
    mv a0, t0
    ecall
    mv a0, t1
    ecall
    ld a0, 0(s0)
    ecall
    ld a0, 1024(s0)
    ecall
    ebreak
fn0:
    lwu a2, 488(s0)
    and a5, a5, a0
    ret
fn1:
    and a4, a4, a5
    slliw a5, a5, 3
    addiw a2, a0, 1958
    ret
fn2:
    mulhu a5, a5, t1
    sh a5, 1236(s0)
    slliw t0, t0, 12
    ret
