# Regression: `li` of a constant whose middle 12-bit chunk is 4095 used to
# expand to `addi rd, rd, 2048`, which the I-type immediate field wraps to
# -2048 (found by the fuzzer's encode/decode roundtrip oracle). The program
# loads such constants and reports them through the output ecall so the
# emulator <-> pipeline oracles also cover the corrected expansion.
    li a0, 9223372036854775807
    li a1, 4294967295
    li a2, 1152640029630136191
    li a7, 64
    ecall
    mv a0, a1
    ecall
    mv a0, a2
    ecall
    ebreak
