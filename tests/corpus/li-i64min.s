# Regression: the assembly parser rejected `li` of i64::MIN ("bad integer")
# because it parsed the magnitude as i64 before negating. The corpus format
# depends on `li` round-tripping the full 64-bit domain.
    li a0, -9223372036854775808
    li a1, -9223372036854775807
    srai a2, a0, 63
    li a7, 64
    ecall
    mv a0, a1
    ecall
    mv a0, a2
    ecall
    ebreak
