# helios-fuzz seed=0x973bb0b228f8624 profile=mem-dense iters=10
    li s0, 2097152
    li s2, 2097416
    li s1, 10
    li a0, 5039886001636308275
    li a1, -2591428530253648004
    li a2, 0
    li a3, -449649902388842335
    li a4, 1
    li a5, -2548134887988728206
    li t0, -2
    li t1, 9223372036854775807
outer:
    andi t2, a0, 2040
    add t2, t2, s0
    lw a0, 0(t2)
    li s3, 3
L0:
    ld a1, 1176(s2)
    lb a5, 1405(s0)
    addi s3, s3, -1
    bnez s3, L0
    andi t2, a0, 2040
    add t2, t2, s0
    lwu a1, 0(t2)
    andi t2, a2, 2040
    add t2, t2, s0
    lbu a2, 0(t2)
    andi t2, a2, 2040
    add t2, t2, s0
    sb a2, 0(t2)
    div a1, a4, a0
    lb a2, 1909(s0)
    addi s1, s1, -1
    bnez s1, outer
    li a7, 64
    ecall
    mv a0, a1
    ecall
    mv a0, a2
    ecall
    mv a0, a3
    ecall
    mv a0, a4
    ecall
    mv a0, a5
    ecall
    mv a0, t0
    ecall
    mv a0, t1
    ecall
    ld a0, 0(s0)
    ecall
    ld a0, 1024(s0)
    ecall
    ebreak
