//! Differential property test: random (but well-formed) programs must
//! commit exactly the emulator's retired instruction count under *every*
//! fusion configuration — fusion is a microarchitectural optimization and
//! must be architecturally invisible. Driven by a seeded deterministic
//! generator (helios-prng) so failures replay exactly.

use helios_core::FusionMode;
use helios_emu::{Cpu, RetireStream};
use helios_isa::{Asm, Reg};
use helios_prng::{Rng, SeedableRng, StdRng};
use helios_uarch::{PipeConfig, Pipeline};

/// One generated operation of the random program body.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// ALU between two of the working registers.
    Alu(u8, u8, u8, u8),
    /// Load from the shared buffer at a bounded offset.
    Load(u8, u16),
    /// Store to the shared buffer at a bounded offset.
    Store(u8, u16),
    /// Forward skip over the next instruction if a register is odd.
    SkipIfOdd(u8),
}

fn op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..4u8) {
        0 => Op::Alu(
            rng.gen_range(0..6u8),
            rng.gen_range(0..6u8),
            rng.gen_range(0..6u8),
            rng.gen_range(0..5u8),
        ),
        1 => Op::Load(rng.gen_range(0..6u8), rng.gen_range(0..480u16)),
        2 => Op::Store(rng.gen_range(0..6u8), rng.gen_range(0..480u16)),
        _ => Op::SkipIfOdd(rng.gen_range(0..6u8)),
    }
}

/// Working registers the generator may touch (never the loop counter or
/// buffer base).
const WORK: [Reg; 6] = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];

fn build(ops: &[Op], iters: i64) -> helios_isa::Program {
    let mut a = Asm::new();
    let buf = a.zeros(512, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, iters);
    for (i, r) in WORK.iter().enumerate() {
        a.li(*r, (i as i64 + 1) * 7);
    }
    let top = a.here();
    for &o in ops {
        match o {
            Op::Alu(d, x, y, k) => {
                let (d, x, y) = (WORK[d as usize], WORK[x as usize], WORK[y as usize]);
                match k {
                    0 => a.add(d, x, y),
                    1 => a.sub(d, x, y),
                    2 => a.xor(d, x, y),
                    3 => a.and(d, x, y),
                    _ => a.or(d, x, y),
                };
            }
            Op::Load(d, off) => {
                a.ld(WORK[d as usize], (off & !7) as i32, Reg::S0);
            }
            Op::Store(s, off) => {
                a.sd(WORK[s as usize], (off & !7) as i32, Reg::S0);
            }
            Op::SkipIfOdd(r) => {
                let skip = a.new_label();
                a.andi(Reg::T0, WORK[r as usize], 1);
                a.bnez(Reg::T0, skip);
                a.addi(WORK[(r as usize + 1) % 6], WORK[(r as usize + 1) % 6], 3);
                a.bind(skip);
            }
        }
    }
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    a.assemble().expect("generated program assembles")
}

#[test]
fn every_config_commits_the_emulated_stream() {
    let mut rng = StdRng::seed_from_u64(0xd1ff_0001);
    for case in 0..24 {
        let n_ops = rng.gen_range(4..40usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| op(&mut rng)).collect();
        let iters = rng.gen_range(2..40i64);
        let prog = build(&ops, iters);

        // Reference: functional execution.
        let mut cpu = Cpu::new(prog.clone());
        let retired = cpu.run(5_000_000).expect("program terminates");
        let final_regs: Vec<u64> = WORK.iter().map(|&r| cpu.reg(r)).collect();

        for mode in FusionMode::ALL {
            let stream = RetireStream::new(prog.clone(), 5_000_000);
            let mut pipe = Pipeline::new(PipeConfig::with_fusion(mode), stream);
            let stats = pipe
                .try_run(500_000_000)
                .unwrap_or_else(|e| panic!("case {case} {}: {e}", mode.name()))
                .clone();
            assert_eq!(
                stats.instructions,
                retired,
                "case {case} {}: committed != retired (ops {ops:?}, iters {iters})",
                mode.name()
            );
            assert!(stats.cycles > 0);
        }

        // The functional result is deterministic across replays.
        let mut cpu2 = Cpu::new(prog);
        cpu2.run(5_000_000).unwrap();
        for (&r, &v) in WORK.iter().zip(&final_regs) {
            assert_eq!(cpu2.reg(r), v);
        }
    }
}
