//! Tier-1 gates for the differential co-simulation fuzzer: a fixed-seed
//! campaign through all three oracles, shrinker behaviour, corpus replay,
//! and jobs-independent determinism.

use helios::fuzz::{replay_corpus, run_campaign, shrink, FuzzConfig, FuzzProgram, Profile};

/// Fixed-seed smoke: ≥1k generated programs through the word-level decode
/// oracle, the emulator ↔ pipeline lockstep oracle, and the six-mode
/// invariance oracle — zero violations.
#[test]
fn fixed_seed_campaign_is_clean() {
    let mut cfg = FuzzConfig::new(0x5eed_0001, 1000);
    cfg.quiet = true;
    let s = run_campaign(cfg);
    assert_eq!(s.programs, 1000);
    assert_eq!(s.words, 1000 * 64);
    assert!(
        s.failures.is_empty(),
        "oracle violations: {:#?}",
        s.failures
    );
    // Every profile participated in the rotation.
    assert!(s.per_profile.iter().all(|&n| n > 0), "{:?}", s.per_profile);
    assert!(s.uops > 100_000, "campaign too small: {} uops", s.uops);
}

/// The campaign summary — counters and failure list — must not depend on
/// the worker count.
#[test]
fn campaign_summary_is_jobs_independent() {
    let mut one = FuzzConfig::new(0xd37e_2217, 60);
    one.quiet = true;
    one.jobs = 1;
    let mut four = one;
    four.jobs = 4;
    assert_eq!(run_campaign(one), run_campaign(four));
}

/// Same seed, same campaign — byte-identical summaries across runs.
#[test]
fn campaign_is_deterministic() {
    let mut cfg = FuzzConfig::new(42, 40);
    cfg.quiet = true;
    cfg.profile = Some(Profile::MemDense);
    assert_eq!(run_campaign(cfg), run_campaign(cfg));
}

/// An expired per-iteration wall-clock budget quarantines iterations as
/// reported timeout failures — the campaign still completes every
/// iteration and never wedges.
#[test]
fn iteration_timeout_is_reported_not_fatal() {
    let mut cfg = FuzzConfig::new(7, 6);
    cfg.quiet = true;
    cfg.iter_timeout_ms = Some(0); // already expired: every iteration trips
    let s = run_campaign(cfg);
    assert_eq!(s.programs, 6, "campaign still visits every iteration");
    assert_eq!(s.failures.len(), 6);
    for f in &s.failures {
        assert!(
            f.message.contains("wall-clock timeout"),
            "unexpected failure kind: {}",
            f.message
        );
        assert!(f.minimized.is_empty(), "timeouts are not shrunk");
    }
}

/// The delta-debug shrinker produces a strictly smaller reproducer for a
/// planted "bug" (a syntactic property standing in for an oracle failure)
/// while preserving the failure.
#[test]
fn shrinker_minimizes_planted_bug() {
    // Find a deterministic victim: a large program whose text contains a
    // multiply, so the predicate below has something to preserve.
    let victim = (0..200u64)
        .map(|s| FuzzProgram::generate(s, Profile::Mixed))
        .find(|p| p.block_count() >= 12 && p.asm_text().contains(" mul "))
        .expect("a victim program exists in the first 200 seeds");
    let fails = |p: &FuzzProgram| p.asm_text().contains(" mul ");
    assert!(fails(&victim), "planted bug must hold on entry");

    let min = shrink(&victim, fails);
    assert!(fails(&min), "shrinking must preserve the failure");
    assert!(
        min.block_count() < victim.block_count(),
        "shrinker failed to reduce: {} -> {} blocks",
        victim.block_count(),
        min.block_count()
    );
    assert!(min.iters() <= victim.iters());
    // A single-property failure should minimize hard: a handful of blocks.
    assert!(
        min.block_count() <= 3,
        "expected near-minimal reproducer, got {} blocks:\n{}",
        min.block_count(),
        min.asm_text()
    );
}

/// Every committed corpus seed — minimized bug reproducers and pinned
/// anchors — replays clean through the oracles.
#[test]
fn corpus_replays_clean() {
    let results = replay_corpus("tests/corpus").expect("corpus directory exists");
    assert!(results.len() >= 4, "corpus unexpectedly small: {results:?}");
    for (name, failure) in &results {
        assert!(failure.is_none(), "{name}: {failure:?}");
    }
}

/// Generated programs always parse back from their own text — the corpus
/// format is the single source of truth.
#[test]
fn generated_text_always_parses() {
    for seed in 0..60u64 {
        for profile in Profile::ALL {
            let p = FuzzProgram::generate(seed, profile);
            // program() panics (with the parse error) if the text is invalid.
            let prog = p.program();
            assert!(!prog.insts.is_empty());
        }
    }
}
