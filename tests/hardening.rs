//! Hardening property tests: `try_run` under starvation-sized cores, the
//! lockstep oracle checker over real workloads, and the structured-error
//! surface. Seeded deterministic generation (helios-prng) so failures
//! replay exactly.

use helios_core::FusionMode;
use helios_emu::RetireStream;
use helios_isa::{Asm, Reg};
use helios_prng::{Rng, SeedableRng, StdRng};
use helios_uarch::{FaultConfig, PipeConfig, Pipeline, SimError};

/// One generated operation of the random program body (mirrors the
/// differential-test generator: ALU traffic, bounded loads/stores, and
/// forward skips for branchy control flow).
#[derive(Clone, Copy, Debug)]
enum Op {
    Alu(u8, u8, u8, u8),
    Load(u8, u16),
    Store(u8, u16),
    SkipIfOdd(u8),
}

fn op(rng: &mut StdRng) -> Op {
    match rng.gen_range(0..4u8) {
        0 => Op::Alu(
            rng.gen_range(0..6u8),
            rng.gen_range(0..6u8),
            rng.gen_range(0..6u8),
            rng.gen_range(0..5u8),
        ),
        1 => Op::Load(rng.gen_range(0..6u8), rng.gen_range(0..480u16)),
        2 => Op::Store(rng.gen_range(0..6u8), rng.gen_range(0..480u16)),
        _ => Op::SkipIfOdd(rng.gen_range(0..6u8)),
    }
}

const WORK: [Reg; 6] = [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4, Reg::A5];

fn build(ops: &[Op], iters: i64) -> helios_isa::Program {
    let mut a = Asm::new();
    let buf = a.zeros(512, 64);
    a.la(Reg::S0, buf);
    a.li(Reg::S1, iters);
    for (i, r) in WORK.iter().enumerate() {
        a.li(*r, (i as i64 + 1) * 7);
    }
    let top = a.here();
    for &o in ops {
        match o {
            Op::Alu(d, x, y, k) => {
                let (d, x, y) = (WORK[d as usize], WORK[x as usize], WORK[y as usize]);
                match k {
                    0 => a.add(d, x, y),
                    1 => a.sub(d, x, y),
                    2 => a.xor(d, x, y),
                    3 => a.and(d, x, y),
                    _ => a.or(d, x, y),
                };
            }
            Op::Load(d, off) => {
                a.ld(WORK[d as usize], (off & !7) as i32, Reg::S0);
            }
            Op::Store(s, off) => {
                a.sd(WORK[s as usize], (off & !7) as i32, Reg::S0);
            }
            Op::SkipIfOdd(r) => {
                let skip = a.new_label();
                a.andi(Reg::T0, WORK[r as usize], 1);
                a.bnez(Reg::T0, skip);
                a.addi(WORK[(r as usize + 1) % 6], WORK[(r as usize + 1) % 6], 3);
                a.bind(skip);
            }
        }
    }
    a.addi(Reg::S1, Reg::S1, -1);
    a.bnez(Reg::S1, top);
    a.halt();
    a.assemble().expect("generated program assembles")
}

/// A starvation-sized core: every structure at (or near) its minimum, so
/// forward progress leans on the repair machinery — pending-NCSF unfusing,
/// the resource-deadlock breaker, and flush recovery.
fn starved(fusion: FusionMode) -> PipeConfig {
    PipeConfig::builder()
        .fusion(fusion)
        .rob_size(8)
        .iq_size(4)
        .lq_size(4)
        .sq_size(2)
        .aq_size(16)
        .prf_size(48)
        .watchdog_cycles(20_000) // tight: any commit gap this long is a hang
        .build()
        .expect("starvation config is small but valid")
}

/// Random programs on starvation configs must complete with `Ok` under
/// every fusion mode, with the lockstep checker attached throughout.
#[test]
fn random_programs_complete_under_starvation() {
    let mut rng = StdRng::seed_from_u64(0x57a2_0001);
    let cases = if cfg!(debug_assertions) { 8 } else { 20 };
    for case in 0..cases {
        let n_ops = rng.gen_range(4..32usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| op(&mut rng)).collect();
        let iters = rng.gen_range(2..24i64);
        let prog = build(&ops, iters);

        for mode in FusionMode::ALL {
            let stream = RetireStream::new(prog.clone(), 5_000_000);
            let mut pipe = Pipeline::new(starved(mode), stream);
            pipe.attach_checker(RetireStream::new(prog.clone(), 5_000_000));
            match pipe.try_run(500_000_000) {
                Ok(stats) => assert!(stats.instructions > 0),
                Err(e) => panic!(
                    "case {case} {}: starved run failed: {e} (ops {ops:?}, iters {iters})",
                    mode.name()
                ),
            }
        }
    }
}

/// Starvation plus chaos fault injection: still `Ok`, still lockstep-clean.
#[test]
fn faulted_starved_runs_stay_architecturally_clean() {
    let mut rng = StdRng::seed_from_u64(0x57a2_0002);
    let cases = if cfg!(debug_assertions) { 6 } else { 16 };
    for case in 0..cases {
        let n_ops = rng.gen_range(4..32usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| op(&mut rng)).collect();
        let iters = rng.gen_range(2..24i64);
        let prog = build(&ops, iters);

        let stream = RetireStream::new(prog.clone(), 5_000_000);
        let mut pipe = Pipeline::new(starved(FusionMode::Helios), stream);
        pipe.attach_checker(RetireStream::new(prog.clone(), 5_000_000));
        pipe.attach_faults(FaultConfig::chaos(case as u64));
        match pipe.try_run(500_000_000) {
            Ok(_) => {}
            Err(e) => panic!("case {case}: faulted starved run failed: {e}"),
        }
    }
}

/// An exhausted budget is a `CycleLimit` error — with readable partial
/// statistics — never a panic.
#[test]
fn cycle_limit_is_reported_not_panicked() {
    let ops: Vec<Op> = {
        let mut rng = StdRng::seed_from_u64(0x57a2_0003);
        (0..16).map(|_| op(&mut rng)).collect()
    };
    let prog = build(&ops, 1000);
    let stream = RetireStream::new(prog, 5_000_000);
    let mut pipe = Pipeline::new(PipeConfig::with_fusion(FusionMode::Helios), stream);
    match pipe.try_run(50) {
        Err(SimError::CycleLimit { max_cycles, .. }) => {
            assert_eq!(max_cycles, 50);
            assert_eq!(pipe.stats().cycles, 50, "partial stats finalized");
        }
        other => panic!("expected CycleLimit, got {other:?}"),
    }
}

/// Oracle-checked workload runs pass with zero violations, and attaching
/// the checker does not perturb timing: cycles and IPC match an unchecked
/// run exactly.
#[test]
fn workloads_pass_the_lockstep_oracle() {
    let names: &[&str] = if cfg!(debug_assertions) {
        &["bitcount", "fft"]
    } else {
        &["bitcount", "fft", "dijkstra", "657.xz_1", "605.mcf"]
    };
    let all = helios::all_workloads();
    for name in names {
        let w = all
            .iter()
            .find(|w| &w.name == name)
            .unwrap_or_else(|| panic!("workload {name} not registered"));

        let mut plain = Pipeline::new(PipeConfig::with_fusion(FusionMode::Helios), w.stream());
        let base = plain
            .try_run(w.fuel * 20)
            .unwrap_or_else(|e| panic!("{name}: unchecked run failed: {e}"))
            .clone();

        let mut checked = Pipeline::new(PipeConfig::with_fusion(FusionMode::Helios), w.stream());
        checked.attach_checker(w.stream());
        let stats = checked
            .try_run(w.fuel * 20)
            .unwrap_or_else(|e| panic!("{name}: oracle-checked run failed: {e}"));
        assert!(stats.oracle_checked > 0, "{name}: checker saw no commits");
        assert_eq!(
            (stats.cycles, stats.instructions),
            (base.cycles, base.instructions),
            "{name}: the checker must not perturb timing"
        );
    }
}
