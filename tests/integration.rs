//! Cross-crate integration tests: the full stack (assembler → emulator →
//! pipeline under every fusion configuration) must agree on architectural
//! behaviour, and the fusion configurations must satisfy their mutual
//! invariants on the real benchmark suite.

use helios::{FusionMode, SimRequest, SimStats, Workload};

fn run_workload(w: &Workload, mode: FusionMode) -> SimStats {
    SimRequest::mode(w, mode).run().stats
}

/// A small but diverse subset (kept fast for CI-style runs).
const SUBSET: [&str; 6] = [
    "crc32",
    "dijkstra",
    "fft",
    "657.xz_1",
    "623.xalancbmk",
    "648.exchange2",
];

#[test]
fn all_configs_commit_identical_instruction_streams() {
    for name in SUBSET {
        let w = helios::workload(name).unwrap();
        let expected = w.dynamic_length();
        for mode in FusionMode::ALL {
            let s = run_workload(&w, mode);
            assert_eq!(
                s.instructions, expected,
                "{name}/{mode}: committed instructions must equal the trace length"
            );
        }
    }
}

#[test]
fn fusion_never_loses_memory_operations() {
    for name in SUBSET {
        let w = helios::workload(name).unwrap();
        let base = run_workload(&w, FusionMode::NoFusion);
        for mode in [FusionMode::CsfSbr, FusionMode::Helios, FusionMode::OracleFusion] {
            let s = run_workload(&w, mode);
            assert_eq!(
                s.mem_instructions, base.mem_instructions,
                "{name}/{mode}: memory instruction count is architectural"
            );
            assert_eq!(s.loads, base.loads, "{name}/{mode}");
            assert_eq!(s.stores, base.stores, "{name}/{mode}");
        }
    }
}

#[test]
fn uop_accounting_is_consistent() {
    for name in SUBSET {
        let w = helios::workload(name).unwrap();
        for mode in FusionMode::ALL {
            let s = run_workload(&w, mode);
            assert_eq!(
                s.uops + s.fusion.fused_pairs(),
                s.instructions,
                "{name}/{mode}: each fused pair replaces exactly two instructions with one µ-op"
            );
        }
    }
}

#[test]
fn helios_predictor_quality_bounds() {
    for name in SUBSET {
        let w = helios::workload(name).unwrap();
        let s = run_workload(&w, FusionMode::Helios);
        let resolved = s.fusion.predictions_correct + s.fusion.mispredictions;
        assert!(
            resolved <= s.fusion.predictions + s.ncsf_nest_aborts,
            "{name}: resolutions cannot exceed predictions"
        );
        if s.fusion.predictions > 100 {
            assert!(
                s.fusion.accuracy_pct() > 80.0,
                "{name}: confidence gating should keep accuracy high, got {:.1}%",
                s.fusion.accuracy_pct()
            );
        }
    }
}

#[test]
fn storage_budget_matches_paper() {
    use helios_core::{helios_storage, FpConfig};
    let cfg = helios::PipeConfig::default();
    let total = helios_storage(&cfg.sizes(), &FpConfig::default(), true).total_bits();
    let kbit = total as f64 / 1024.0;
    assert!(
        (82.0..86.0).contains(&kbit),
        "paper reports ≈83 Kbit, model computes {kbit:.2}"
    );
}

#[test]
fn workload_checksums_hold_after_simulation_setup() {
    // The registry builds fresh programs each call; simulating must not
    // perturb functional behaviour (programs are immutable).
    for name in SUBSET {
        let w = helios::workload(name).unwrap();
        let _ = run_workload(&w, FusionMode::Helios);
        w.validate().expect("functional checksum still matches");
    }
}
