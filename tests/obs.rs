//! Observability-layer integration tests: the stats-registry schema, the
//! event trace reconciling exactly against the counters on the full suite,
//! JSON artifacts round-tripping through the bundled parser, and the Konata
//! emission agreeing with the retire counts.

use helios::{
    FusionMode, Json, ObsOpts, Report, SimRequest, StatValue, Table, Workload,
};

fn smallest_workload() -> Workload {
    helios::all_workloads()
        .into_iter()
        .min_by_key(|w| w.dynamic_length())
        .expect("suite is non-empty")
}

/// The registry schema — entry names and units, in registration order — is
/// the contract every downstream consumer (JSON artifacts, CSV, dashboards)
/// parses. Pin it so a rename or reorder is a deliberate, reviewed change.
#[test]
fn registry_schema_is_stable() {
    let w = smallest_workload();
    let run = SimRequest::mode(&w, FusionMode::Helios)
        .observing(ObsOpts::metrics())
        .run();
    let reg = run.registry();
    let schema = reg.schema();

    // Spot-pin the load-bearing prefix and the derived tail.
    let expect_prefix = [
        ("cycles", "cycles"),
        ("instructions", "insts"),
        ("uops", "uops"),
        ("mem_instructions", "insts"),
        ("loads", "insts"),
        ("stores", "insts"),
    ];
    for (i, (name, unit)) in expect_prefix.iter().enumerate() {
        assert_eq!(schema[i], (*name, *unit), "schema drift at index {i}");
    }
    for name in [
        "ipc",
        "fusion.csf_pairs",
        "fusion.ncsf_pairs",
        "fusion.predictions",
        "fusion.mpki",
        "fusion.idiom.load_pair",
        "fusion.repair.deadlock",
        "obs.commit_events",
        "obs.fused_commit_events",
        "obs.fetch_to_commit",
        "obs.occ_rob",
        "obs.occ_iq",
        "obs.occ_lq",
        "obs.occ_sq",
    ] {
        assert!(
            reg.get(name).is_some(),
            "registry lost entry `{name}`; schema: {schema:?}"
        );
    }
    // Names are unique (the debug_assert only fires in debug builds).
    let mut names: Vec<&str> = schema.iter().map(|(n, _)| *n).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), schema.len(), "duplicate registry names");
}

/// The event trace must reconcile *exactly* against the architectural
/// counters for every workload in the suite: commits observed == µ-ops
/// retired, fused commits observed == fused pairs counted, and the
/// fetch-to-commit histogram covers exactly the retired µ-ops.
#[test]
fn event_counters_reconcile_with_stats_on_every_workload() {
    for w in helios::all_workloads() {
        let run = SimRequest::mode(&w, FusionMode::Helios)
            .observing(ObsOpts::metrics())
            .run();
        let s = &run.stats;
        let o = run.observer.as_deref().expect("observer attached");
        assert_eq!(
            o.commit_events(),
            s.uops,
            "{}: commit events must equal retired µ-ops",
            w.name
        );
        assert_eq!(
            o.fused_commit_events(),
            s.fusion.fused_pairs(),
            "{}: fused-commit events must equal fused pairs",
            w.name
        );
        assert!(
            o.fuse_events() >= s.fusion.fused_pairs(),
            "{}: every committed pair was fused at least once (fuses {} < pairs {})",
            w.name,
            o.fuse_events(),
            s.fusion.fused_pairs()
        );
        assert_eq!(
            o.fetch_to_commit().count(),
            s.uops,
            "{}: one latency sample per retired µ-op",
            w.name
        );
        // And the registry view agrees with both.
        let reg = run.registry();
        assert_eq!(reg.count("uops"), Some(s.uops), "{}", w.name);
        assert_eq!(reg.count("obs.commit_events"), Some(s.uops), "{}", w.name);
    }
}

/// Attaching the metrics observer must not change simulated timing.
#[test]
fn observer_does_not_perturb_timing() {
    let w = smallest_workload();
    let plain = SimRequest::mode(&w, FusionMode::Helios).run().stats;
    let observed = SimRequest::mode(&w, FusionMode::Helios)
        .observing(ObsOpts::timeline())
        .run()
        .stats;
    assert_eq!(plain, observed, "observer changed simulation results");
}

/// Registry JSON parses with the bundled parser and round-trips every
/// counter value exactly.
#[test]
fn registry_json_round_trips() {
    let w = smallest_workload();
    let run = SimRequest::mode(&w, FusionMode::Helios)
        .observing(ObsOpts::metrics())
        .run();
    let reg = run.registry();
    let doc = Json::parse(&reg.to_json()).expect("registry JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("helios-stats-v1")
    );
    let stats = doc
        .get("stats")
        .and_then(Json::as_array)
        .expect("stats array");
    assert_eq!(stats.len(), reg.entries().len());
    for (entry, j) in reg.entries().iter().zip(stats) {
        assert_eq!(j.get("name").and_then(Json::as_str), Some(entry.name));
        assert_eq!(j.get("unit").and_then(Json::as_str), Some(entry.unit.name()));
        match &entry.value {
            StatValue::Count(v) => {
                assert_eq!(
                    j.get("value").and_then(Json::as_u64),
                    Some(*v),
                    "{}: counter must round-trip exactly",
                    entry.name
                );
            }
            StatValue::Gauge(v) if v.is_finite() => {
                let got = j.get("value").and_then(Json::as_f64).unwrap();
                assert_eq!(got, *v, "{}: gauge must round-trip exactly", entry.name);
            }
            StatValue::Gauge(_) => {}
            StatValue::Hist(h) => {
                let hist = j.get("hist").expect("hist object");
                assert_eq!(hist.get("count").and_then(Json::as_u64), Some(h.count()));
                assert_eq!(hist.get("sum").and_then(Json::as_u64), Some(h.sum()));
            }
        }
    }
}

/// Report JSON (the per-figure artifact format) parses and reproduces the
/// table cells exactly.
#[test]
fn report_json_reflects_the_table() {
    let mut t = Table::new(vec!["benchmark".into(), "IPC".into()]);
    t.row(vec!["crc32".into(), "1.234".into()]);
    t.row(vec!["has,comma \"q\"".into(), "2.5".into()]);
    let mut r = Report::new("t", "a title", t);
    r.note("first note");
    let doc = Json::parse(&r.to_json()).expect("report JSON parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("helios-report-v1")
    );
    let rows = doc.get("rows").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 2);
    let cells = rows[1].as_array().unwrap();
    assert_eq!(cells[0].as_str(), Some("has,comma \"q\""));
    assert_eq!(cells[1].as_str(), Some("2.5"));
}

/// The Konata emission is cross-checked against the registry: the header is
/// well-formed and the number of type-0 (retired) R-records equals
/// `uops + fused_pairs` — every architecturally retired µ-op instance,
/// tails included, retires exactly once in the viewer.
#[test]
fn konata_trace_reconciles_with_retire_counts() {
    let w = smallest_workload();
    let run = SimRequest::mode(&w, FusionMode::Helios)
        .observing(ObsOpts::timeline())
        .run();
    let s = &run.stats;
    let o = run.observer.as_deref().expect("observer attached");
    let mut buf = Vec::new();
    o.write_konata(&mut buf).expect("in-memory write succeeds");
    let text = String::from_utf8(buf).expect("Konata output is UTF-8");

    let mut lines = text.lines();
    assert_eq!(lines.next(), Some("Kanata\t0004"), "header");
    assert!(
        lines.next().is_some_and(|l| l.starts_with("C=\t")),
        "first-cycle line"
    );

    let retired = text
        .lines()
        .filter(|l| l.starts_with("R\t") && l.ends_with("\t0"))
        .count() as u64;
    assert_eq!(
        retired,
        s.uops + s.fusion.fused_pairs(),
        "{}: Konata retire records must cover every retired instance",
        w.name
    );
    // Every record that claims retirement in the timeline really committed.
    let committed_recs = o.records().iter().filter(|r| r.retired()).count() as u64;
    assert_eq!(committed_recs, retired);
}
