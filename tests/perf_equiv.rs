//! Performance-rewrite equivalence suite (DESIGN.md §15).
//!
//! The event-driven hot path (indexed µ-op state, bitset wakeup, wakeup
//! lists, stage skipping) is a pure throughput optimisation: it must not
//! move a single cycle. This suite pins that claim two ways at once, for
//! every registered workload under both fusion modes:
//!
//! * **Golden timing** — `cycles`, `instructions`, and `uops` must equal
//!   the values snapshotted from the pre-rewrite scan-based implementation
//!   (commit 1d23058), so any timing drift introduced by a later hot-path
//!   change fails loudly with the offending cell named.
//! * **Lockstep architecture** — every run attaches the oracle checker
//!   (`SimRequest::checked`), so each committed µ-op is also compared
//!   against an independent second emulation; a wrong value or a skipped
//!   commit is an invariant violation, not a silent pass.

use helios::{FusionMode, SimRequest};

/// `(workload, mode, cycles, instructions, uops)` from the pre-rewrite
/// implementation, full fig10 configuration (Table II core).
#[rustfmt::skip]
const GOLDEN: &[(&str, &str, u64, u64, u64)] = &[
    ("600.perlbench_1", "Helios", 1029911, 237741, 215977),
    ("600.perlbench_1", "NoFusion", 1030151, 237741, 237741),
    ("600.perlbench_2", "Helios", 1940307, 499399, 438525),
    ("600.perlbench_2", "NoFusion", 1940470, 499399, 499399),
    ("600.perlbench_3", "Helios", 632100, 173567, 162723),
    ("600.perlbench_3", "NoFusion", 632448, 173567, 173567),
    ("602.gcc_1", "Helios", 189278, 353839, 308848),
    ("602.gcc_1", "NoFusion", 194807, 353839, 353839),
    ("602.gcc_2", "Helios", 130959, 354599, 309618),
    ("602.gcc_2", "NoFusion", 136339, 354599, 354599),
    ("602.gcc_3", "Helios", 323178, 426197, 372210),
    ("602.gcc_3", "NoFusion", 333365, 426197, 426197),
    ("605.mcf", "Helios", 6159309, 600009, 480093),
    ("605.mcf", "NoFusion", 6159309, 600009, 600009),
    ("620.omnetpp", "Helios", 1181220, 1821277, 1530643),
    ("620.omnetpp", "NoFusion", 1209025, 1821277, 1821277),
    ("623.xalancbmk", "Helios", 344334, 221167, 196855),
    ("623.xalancbmk", "NoFusion", 346003, 221167, 221167),
    ("631.deepsjeng", "Helios", 692720, 1859703, 1859703),
    ("631.deepsjeng", "NoFusion", 692720, 1859703, 1859703),
    ("641.leela", "Helios", 551342, 2377207, 2290101),
    ("641.leela", "NoFusion", 553323, 2377207, 2377207),
    ("648.exchange2", "Helios", 221421, 867618, 822914),
    ("648.exchange2", "NoFusion", 235467, 867618, 867618),
    ("657.xz_1", "Helios", 195302, 320135, 279298),
    ("657.xz_1", "NoFusion", 225934, 320135, 320135),
    ("657.xz_2", "Helios", 1142281, 1260354, 1260354),
    ("657.xz_2", "NoFusion", 1141469, 1260354, 1260354),
    ("adpcm", "Helios", 326436, 255007, 255007),
    ("adpcm", "NoFusion", 326436, 255007, 255007),
    ("basicmath", "Helios", 2326936, 676245, 676245),
    ("basicmath", "NoFusion", 2326936, 676245, 676245),
    ("bitcount", "Helios", 258025, 280016, 280016),
    ("bitcount", "NoFusion", 258025, 280016, 280016),
    ("blowfish", "Helios", 265515, 605025, 605025),
    ("blowfish", "NoFusion", 265515, 605025, 605025),
    ("crc32", "Helios", 163329, 176022, 176022),
    ("crc32", "NoFusion", 163329, 176022, 176022),
    ("dijkstra", "Helios", 70655, 77409, 72228),
    ("dijkstra", "NoFusion", 69987, 77409, 77409),
    ("fft", "Helios", 36704, 161399, 142967),
    ("fft", "NoFusion", 39113, 161399, 161399),
    ("gsm_toast", "Helios", 271029, 423849, 423849),
    ("gsm_toast", "NoFusion", 271029, 423849, 423849),
    ("gsm_untoast", "Helios", 528186, 336011, 336011),
    ("gsm_untoast", "NoFusion", 528186, 336011, 336011),
    ("jpeg", "Helios", 302452, 352808, 308008),
    ("jpeg", "NoFusion", 308053, 352808, 352808),
    ("patricia", "Helios", 1123212, 274572, 261584),
    ("patricia", "NoFusion", 1123293, 274572, 274572),
    ("qsort", "Helios", 623524, 296939, 283892),
    ("qsort", "NoFusion", 619479, 296939, 296939),
    ("rijndael", "Helios", 238549, 949518, 946824),
    ("rijndael", "NoFusion", 238549, 949518, 949518),
    ("rsynth", "Helios", 111351, 402008, 338008),
    ("rsynth", "NoFusion", 120350, 402008, 402008),
    ("sha", "Helios", 117922, 373713, 366729),
    ("sha", "NoFusion", 117606, 373713, 373713),
    ("stringsearch", "Helios", 156067, 76410, 76410),
    ("stringsearch", "NoFusion", 156067, 76410, 76410),
    ("susan", "Helios", 168063, 467874, 463412),
    ("susan", "NoFusion", 168358, 467874, 467874),
    ("typeset", "Helios", 300093, 151605, 127624),
    ("typeset", "NoFusion", 299386, 151605, 151605),
];

fn mode_of(name: &str) -> FusionMode {
    match name {
        "Helios" => FusionMode::Helios,
        "NoFusion" => FusionMode::NoFusion,
        other => panic!("unknown mode in golden table: {other}"),
    }
}

/// Every workload × {NoFusion, Helios}, lockstep checker attached, timing
/// bit-equal to the pre-rewrite goldens.
#[test]
fn all_workloads_match_pre_rewrite_goldens() {
    let mut failures = Vec::new();
    for &(name, mode_name, cycles, instructions, uops) in GOLDEN {
        let w = helios::workload(name)
            .unwrap_or_else(|| panic!("workload {name} not registered"));
        let trace = w.trace().expect("workload halts within fuel");
        let run = SimRequest::mode(&w, mode_of(mode_name))
            .replaying(&trace)
            .checked()
            .run();
        let got = (run.stats.cycles, run.stats.instructions, run.stats.uops);
        if got != (cycles, instructions, uops) {
            failures.push(format!(
                "{name}/{mode_name}: got cycles {} instructions {} uops {}, \
                 golden cycles {cycles} instructions {instructions} uops {uops}",
                got.0, got.1, got.2
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "timing diverged from pre-rewrite goldens in {} cell(s):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The golden table covers the whole registry — a newly added workload must
/// be snapshotted here too, or this trips.
#[test]
fn golden_table_covers_every_workload() {
    let all = helios::all_workloads();
    assert_eq!(GOLDEN.len(), all.len() * 2);
    for w in &all {
        for mode in ["NoFusion", "Helios"] {
            assert!(
                GOLDEN.iter().any(|&(n, m, ..)| n == w.name && m == mode),
                "no golden row for {}/{mode}",
                w.name
            );
        }
    }
}
