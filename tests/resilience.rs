//! Resilient-sweep integration tests: per-cell fault quarantine, watchdog
//! timeouts, checkpoint/resume equivalence, journal corruption recovery,
//! and integrity-checked trace caching.
//!
//! Every test drives the real [`helios::run_sweep_opts`] executor; chaos
//! injection (`CellChaos`) exercises the genuine panic-isolation and
//! deadline paths, not mocks.

use helios::{
    run_sweep_opts, CellChaos, CellOutcome, Checkpoint, FusionMode, Sweep, SweepOptions,
    SweepPolicy, Workload,
};
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// The interrupted flag and SIGINT handler are process-global; sweeps that
/// set them must not overlap other sweeps in this test binary.
static SWEEP_GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    SWEEP_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh scratch directory per test (no tempfile dependency).
fn scratch(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("helios-resilience-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

fn small_grid() -> (Vec<Workload>, [FusionMode; 2]) {
    let ws = ["crc32", "bitcount"]
        .iter()
        .map(|n| helios::workload(n).unwrap())
        .collect();
    (ws, [FusionMode::NoFusion, FusionMode::Helios])
}

/// Quick policy: no real retry latency in tests.
fn fast_policy() -> SweepPolicy {
    SweepPolicy {
        backoff_ms: 1,
        backoff_cap_ms: 1,
        ..SweepPolicy::default()
    }
}

fn assert_same_results(a: &Sweep, b: &Sweep) {
    assert_eq!(a.results().len(), b.results().len());
    for (x, y) in a.results().iter().zip(b.results()) {
        assert_eq!((x.workload, x.mode), (y.workload, y.mode), "ordering differs");
        assert_eq!(x.stats, y.stats, "{}/{}: stats differ", x.workload, x.mode.name());
    }
}

/// An injected panic in one cell is quarantined — with the attempt count
/// and panic message — while every other cell completes, and the sweep
/// reports itself partial.
#[test]
fn panicking_cell_is_quarantined_and_rest_complete() {
    let _g = gate();
    let (ws, modes) = small_grid();
    let opts = SweepOptions {
        jobs: 2,
        policy: fast_policy(),
        chaos: Some(CellChaos::parse("crc32/Helios=panic").unwrap()),
        ..SweepOptions::default()
    };
    let sweep = run_sweep_opts(&ws, &modes, &opts).unwrap();

    assert!(sweep.get("crc32", FusionMode::Helios).is_none());
    assert!(sweep.get("crc32", FusionMode::NoFusion).is_some());
    assert!(sweep.get("bitcount", FusionMode::NoFusion).is_some());
    assert!(sweep.get("bitcount", FusionMode::Helios).is_some());

    assert_eq!(sweep.failures().len(), 1);
    let f = &sweep.failures()[0];
    assert_eq!((f.workload, f.mode), ("crc32", FusionMode::Helios));
    match &f.outcome {
        CellOutcome::Failed { error, attempts } => {
            assert_eq!(*attempts, 2, "default policy retries once");
            assert!(error.contains("injected chaos panic"), "{error}");
        }
        other => panic!("expected Failed, got {}", other.describe()),
    }
    assert!(!sweep.is_complete());
    assert_eq!(sweep.exit_code(), helios::exit::PARTIAL);
}

/// An injected wall-clock timeout takes the genuine deadline path through
/// the pipeline and is reported as `TimedOut`, not a panic.
#[test]
fn timed_out_cell_is_reported() {
    let _g = gate();
    let (ws, modes) = small_grid();
    let opts = SweepOptions {
        jobs: 1,
        policy: fast_policy(),
        chaos: Some(CellChaos::parse("bitcount/NoFusion=timeout").unwrap()),
        ..SweepOptions::default()
    };
    let sweep = run_sweep_opts(&ws, &modes, &opts).unwrap();

    assert_eq!(sweep.failures().len(), 1);
    let f = &sweep.failures()[0];
    assert_eq!((f.workload, f.mode), ("bitcount", FusionMode::NoFusion));
    assert!(
        matches!(f.outcome, CellOutcome::TimedOut { attempts: 2, .. }),
        "expected TimedOut, got {}",
        f.outcome.describe()
    );
    assert_eq!(sweep.results().len(), 3);
    assert_eq!(sweep.exit_code(), helios::exit::PARTIAL);
}

/// Kill-and-resume equivalence: a sweep stopped after two cells (the
/// deterministic stand-in for `kill -9`/SIGINT) and then resumed from its
/// journal produces exactly the results of an uninterrupted sweep.
#[test]
fn interrupted_sweep_resumes_to_identical_results() {
    let _g = gate();
    let (ws, modes) = small_grid();
    let dir = scratch("resume");
    let ckpt = dir.join("sweep.ckpt.jsonl");

    let reference = run_sweep_opts(&ws, &modes, &SweepOptions::default()).unwrap();
    assert!(reference.is_complete());

    let interrupted = run_sweep_opts(
        &ws,
        &modes,
        &SweepOptions {
            jobs: 1,
            checkpoint: Some(Checkpoint {
                path: ckpt.clone(),
                resume: false,
            }),
            stop_after: Some(2),
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(interrupted.interrupted());
    assert_eq!(interrupted.exit_code(), helios::exit::INTERRUPTED);
    assert_eq!(
        fs::read_to_string(&ckpt).unwrap().lines().count(),
        2,
        "exactly the finished cells are journaled"
    );

    let resumed = run_sweep_opts(
        &ws,
        &modes,
        &SweepOptions {
            jobs: 1,
            checkpoint: Some(Checkpoint {
                path: ckpt,
                resume: true,
            }),
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.restored(), 2, "journaled cells are not re-simulated");
    assert_same_results(&reference, &resumed);
}

/// A torn/corrupted journal line (a crash mid-write) is skipped with a
/// warning and its cell re-simulated — never a poisoned resume, never a
/// lost sweep.
#[test]
fn corrupted_journal_line_is_recovered() {
    let _g = gate();
    let (ws, modes) = small_grid();
    let dir = scratch("corrupt");
    let ckpt = dir.join("sweep.ckpt.jsonl");

    let reference = run_sweep_opts(
        &ws,
        &modes,
        &SweepOptions {
            jobs: 1,
            checkpoint: Some(Checkpoint {
                path: ckpt.clone(),
                resume: false,
            }),
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(reference.is_complete());

    // Tear the final line in half and scramble one mid-file line.
    let text = fs::read_to_string(&ckpt).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 4);
    let torn = lines[3].len() / 2;
    lines[3].truncate(torn);
    lines[1] = lines[1].replace("\"stats\"", "\"stat?\"");
    fs::write(&ckpt, lines.join("\n")).unwrap();

    let resumed = run_sweep_opts(
        &ws,
        &modes,
        &SweepOptions {
            jobs: 1,
            checkpoint: Some(Checkpoint {
                path: ckpt,
                resume: true,
            }),
            ..SweepOptions::default()
        },
    )
    .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.restored(), 2, "the two intact lines restore");
    assert_same_results(&reference, &resumed);
}

/// The trace store detects a corrupted entry (block checksum mismatch on
/// any flipped byte), quarantines it, and re-records — the sweep's results
/// are identical to a store-clean run.
#[test]
fn corrupted_stored_trace_is_quarantined_and_rerecorded() {
    let _g = gate();
    let (ws, modes) = small_grid();
    let dir = scratch("traces");
    let store = helios::TraceStore::open(&dir).unwrap();

    let opts = SweepOptions {
        jobs: 1,
        trace_store: Some(store.clone()),
        ..SweepOptions::default()
    };
    let reference = run_sweep_opts(&ws, &modes, &opts).unwrap();
    assert!(reference.is_complete());
    assert_eq!(store.stats().recorded, ws.len() as u64, "one entry per workload");
    let cached = store
        .entries()
        .unwrap()
        .into_iter()
        .find(|e| e.name == "crc32")
        .expect("sweep populates the store")
        .path;

    // Flip one byte in the middle of the stored trace.
    let mut bytes = fs::read(&cached).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&cached, &bytes).unwrap();

    let rerun = run_sweep_opts(&ws, &modes, &opts).unwrap();
    assert!(rerun.is_complete(), "corrupt store must not fail the sweep");
    assert_same_results(&reference, &rerun);
    assert_ne!(
        fs::read(&cached).unwrap(),
        bytes,
        "the corrupted trace was re-recorded"
    );
    let stats = store.stats();
    assert_eq!(stats.quarantined, 1, "corrupt entry quarantined: {stats:?}");
    assert_eq!(
        stats.recorded,
        ws.len() as u64 + 1,
        "only the corrupt entry was re-recorded: {stats:?}"
    );

    // A third sweep against the now-healthy store records nothing at all.
    let before = store.stats();
    let warm = run_sweep_opts(&ws, &modes, &opts).unwrap();
    assert!(warm.is_complete());
    assert_same_results(&reference, &warm);
    let delta = store.stats().since(&before);
    assert_eq!(delta.recorded, 0, "warm store: pure hits ({delta:?})");
    assert_eq!(delta.hits, ws.len() as u64);
}

/// Seeded chaos over the full grid: every uninjected cell completes, every
/// injected cell is quarantined with the matching outcome (the library-level
/// version of `soak --sweep-chaos`).
#[test]
fn seeded_chaos_completes_all_healthy_cells() {
    let _g = gate();
    let ws: Vec<Workload> = ["crc32", "bitcount", "fft", "dijkstra"]
        .iter()
        .map(|n| helios::workload(n).unwrap())
        .collect();
    let modes = [FusionMode::NoFusion, FusionMode::CsfSbr, FusionMode::Helios];
    let chaos = CellChaos::parse("seed=11,panic=0.2,timeout=0.2").unwrap();
    let opts = SweepOptions {
        jobs: 2,
        policy: fast_policy(),
        chaos: Some(chaos.clone()),
        ..SweepOptions::default()
    };
    let sweep = run_sweep_opts(&ws, &modes, &opts).unwrap();

    let mut injected = 0;
    for w in &ws {
        for &m in &modes {
            match chaos.fault_for(w.name, m.name()) {
                None => assert!(
                    sweep.get(w.name, m).is_some(),
                    "{}/{}: healthy cell missing",
                    w.name,
                    m.name()
                ),
                Some(_) => {
                    injected += 1;
                    assert!(sweep.get(w.name, m).is_none());
                    assert!(sweep
                        .failures()
                        .iter()
                        .any(|f| f.workload == w.name && f.mode == m));
                }
            }
        }
    }
    assert!(injected > 0, "seed 11 must inject at least one fault");
    assert_eq!(sweep.failures().len(), injected);
}
