//! Sweep-engine integration tests: recorded-replay equivalence, parallel
//! determinism, and loud failure on starved recordings.

use helios::{run_sweep_jobs, FusionMode, SimRequest};
use helios_emu::EmuError;

/// The pipeline consumes a retired-µ-op sequence; whether it comes from a
/// live emulator (`RetireStream`) or a shared recording must be invisible in
/// every statistic, for every workload, in both the baseline and the most
/// machinery-heavy configuration.
#[test]
fn recorded_replay_matches_live_stream_for_every_workload() {
    for w in helios::all_workloads() {
        let trace = w.recorded().expect("workload halts within fuel");
        for mode in [FusionMode::NoFusion, FusionMode::Helios] {
            let live = SimRequest::mode(&w, mode).run().stats;
            let replay = SimRequest::mode(&w, mode).replaying(&trace).run().stats;
            assert_eq!(
                live,
                replay,
                "{} {}: replay stats differ from live-stream stats",
                w.name,
                mode.name()
            );
        }
    }
}

/// `--jobs N` must not change a single bit of any result, nor the
/// workload-major result ordering.
#[test]
fn parallel_sweep_is_deterministic() {
    let ws: Vec<_> = ["crc32", "susan"]
        .iter()
        .map(|n| helios::workload(n).unwrap())
        .collect();
    let modes = [FusionMode::NoFusion, FusionMode::CsfSbr, FusionMode::Helios];
    let serial = run_sweep_jobs(&ws, &modes, 1);
    let parallel = run_sweep_jobs(&ws, &modes, 4);
    assert_eq!(serial.results().len(), parallel.results().len());
    for (a, b) in serial.results().iter().zip(parallel.results()) {
        assert_eq!((a.workload, a.mode), (b.workload, b.mode), "ordering differs");
        assert_eq!(a.stats, b.stats, "{}/{}: stats differ", a.workload, a.mode.name());
    }
    assert_eq!(serial.workloads(), parallel.workloads());
}

/// A recording whose program cannot halt within its fuel budget must be an
/// error, never a silently truncated trace feeding wrong figures.
#[test]
fn starved_recording_fails_loudly() {
    let mut w = helios::workload("crc32").unwrap();
    w.fuel = 100;
    assert!(matches!(
        w.recorded().unwrap_err(),
        EmuError::OutOfFuel { .. }
    ));
}
