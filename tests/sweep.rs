//! Sweep-engine integration tests: recorded-replay equivalence (in-memory
//! and streamed from a trace store), parallel determinism, and loud failure
//! on starved recordings.

use helios::{run_sweep_jobs, FusionMode, SimRequest, TraceStore};
use helios_emu::EmuError;

/// The pipeline consumes a retired-µ-op sequence; whether it comes from a
/// live emulator (`RetireStream`), a shared in-memory recording, or an
/// HTRC2 store file streamed block-at-a-time must be invisible in every
/// statistic, for every workload, in both the baseline and the most
/// machinery-heavy configuration. The disk replays run with the lockstep
/// architectural checker attached, so any µ-op the codec reconstructed
/// wrongly diverges from a second live emulation and fails loudly.
#[test]
fn recorded_replay_matches_live_stream_for_every_workload() {
    let dir = std::env::temp_dir().join(format!("helios-sweep-store-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = TraceStore::open(&dir).expect("store opens");
    for w in helios::all_workloads() {
        let trace = w.trace().expect("workload halts within fuel");
        let disk = w.stored(&store).expect("store records the workload");
        for mode in [FusionMode::NoFusion, FusionMode::Helios] {
            let live = SimRequest::mode(&w, mode).run().stats;
            let replay = SimRequest::mode(&w, mode).replaying(&trace).run().stats;
            assert_eq!(
                live,
                replay,
                "{} {}: replay stats differ from live-stream stats",
                w.name,
                mode.name()
            );
            let mut streamed = SimRequest::mode(&w, mode)
                .replaying(&disk)
                .checked()
                .run()
                .stats;
            assert_eq!(
                streamed.oracle_checked, streamed.uops,
                "{} {}: lockstep checker must cover every committed µ-op",
                w.name,
                mode.name()
            );
            streamed.oracle_checked = live.oracle_checked;
            assert_eq!(
                live,
                streamed,
                "{} {}: disk-streamed replay stats differ from live-stream stats",
                w.name,
                mode.name()
            );
        }
    }
    assert_eq!(
        store.stats().quarantined,
        0,
        "no store entry went corrupt during the sweep"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `--jobs N` must not change a single bit of any result, nor the
/// workload-major result ordering.
#[test]
fn parallel_sweep_is_deterministic() {
    let ws: Vec<_> = ["crc32", "susan"]
        .iter()
        .map(|n| helios::workload(n).unwrap())
        .collect();
    let modes = [FusionMode::NoFusion, FusionMode::CsfSbr, FusionMode::Helios];
    let serial = run_sweep_jobs(&ws, &modes, 1);
    let parallel = run_sweep_jobs(&ws, &modes, 4);
    assert_eq!(serial.results().len(), parallel.results().len());
    for (a, b) in serial.results().iter().zip(parallel.results()) {
        assert_eq!((a.workload, a.mode), (b.workload, b.mode), "ordering differs");
        assert_eq!(a.stats, b.stats, "{}/{}: stats differ", a.workload, a.mode.name());
    }
    assert_eq!(serial.workloads(), parallel.workloads());
}

/// A recording whose program cannot halt within its fuel budget must be an
/// error, never a silently truncated trace feeding wrong figures.
#[test]
fn starved_recording_fails_loudly() {
    let mut w = helios::workload("crc32").unwrap();
    w.fuel = 100;
    assert!(matches!(
        w.trace().unwrap_err(),
        EmuError::OutOfFuel { .. }
    ));
}
