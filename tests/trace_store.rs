//! TraceStore + HTRC2 integration suite: exact codec round-trips over the
//! whole workload registry and a 200-program fuzz corpus, legacy v1
//! migration against an independently written file, corruption detection on
//! store files, and single-writer concurrency.

use helios::fuzz::{FuzzProgram, Profile, FUZZ_FUEL};
use helios::TraceStore;
use helios_emu::{codec, Trace};
use std::fs;
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("helios-tracestore-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).unwrap();
    d
}

/// Encodes `trace` to HTRC2 bytes with the given block size.
fn encode(trace: &Trace, name: &str, block_uops: u32) -> Vec<u8> {
    let uops: Vec<_> = trace.replay().collect();
    let mut bytes = Vec::new();
    codec::encode_v2(&uops, trace.output(), name, block_uops, &mut bytes)
        .expect("emulator traces always encode");
    bytes
}

/// Asserts decode(encode(trace)) reproduces every µ-op field exactly.
fn assert_round_trip(trace: &Trace, name: &str, block_uops: u32) {
    let bytes = encode(trace, name, block_uops);
    let (header, uops) = codec::decode_all(&mut bytes.as_slice()).expect("encoded trace decodes");
    assert_eq!(header.name, name);
    assert_eq!(header.uops, trace.len());
    assert_eq!(header.output, trace.output());
    assert_eq!(header.stamp, trace.stamp());
    let original: Vec<_> = trace.replay().collect();
    assert_eq!(uops, original, "{name}: decoded µ-ops differ");
}

/// Every registered workload round-trips exactly, at the default block size
/// and at a small one that forces multi-block framing.
#[test]
fn every_workload_round_trips_exactly() {
    for w in helios::all_workloads() {
        let trace = w.trace().expect("workload halts within fuel");
        assert_round_trip(&trace, w.name, helios_emu::DEFAULT_BLOCK_UOPS);
        assert_round_trip(&trace, w.name, 4096);
    }
}

/// 200 generated fuzz programs — branch-dense, mem-dense, and mixed — all
/// round-trip exactly through the v2 codec. Programs that exhaust their
/// fuel are skipped (recording refuses truncated traces by design), but
/// the corpus must stay overwhelmingly encodable.
#[test]
fn fuzz_corpus_round_trips_exactly() {
    let mut encoded = 0u32;
    let mut seed = 0u64;
    'outer: loop {
        for profile in Profile::ALL {
            if encoded == 200 {
                break 'outer;
            }
            let p = FuzzProgram::generate(seed, profile);
            let Ok(trace) = Trace::record(p.program(), FUZZ_FUEL) else {
                continue;
            };
            let name = format!("fuzz-{seed}-{}", profile.name());
            // 1Ki-µ-op blocks force real multi-block traces out of the
            // longer programs.
            assert_round_trip(&trace, &name, 1024);
            encoded += 1;
        }
        seed += 1;
        assert!(seed < 500, "could not collect 200 halting fuzz programs");
    }
    assert_eq!(encoded, 200);
}

/// A v1 file written by an independent implementation of the documented
/// layout (34-byte header, fixed 47-byte records) is read transparently:
/// the store migrates it to HTRC2 without re-running the emulator, deletes
/// the original, and the migrated trace replays identically.
#[test]
fn independently_written_v1_file_is_migrated() {
    let dir = scratch("v1-compat");
    let w = helios::workload("fft").unwrap();
    let reference = w.trace().unwrap();

    let stamp = reference.stamp();
    let mut v1 = Vec::new();
    v1.extend_from_slice(b"HTRC");
    v1.extend_from_slice(&1u16.to_le_bytes());
    v1.extend_from_slice(&stamp.isa_version.to_le_bytes());
    v1.extend_from_slice(&stamp.checksum.to_le_bytes());
    v1.extend_from_slice(&reference.len().to_le_bytes());
    v1.extend_from_slice(&(reference.output().len() as u64).to_le_bytes());
    for r in reference.replay() {
        v1.extend_from_slice(&r.seq.to_le_bytes());
        v1.extend_from_slice(&r.pc.to_le_bytes());
        v1.extend_from_slice(&helios_isa::encode(&r.inst).to_le_bytes());
        v1.extend_from_slice(&r.next_pc.to_le_bytes());
        match r.mem {
            None => v1.extend_from_slice(&[0; 10]),
            Some(m) => {
                v1.push(if m.is_store { 2 } else { 1 });
                v1.extend_from_slice(&m.addr.to_le_bytes());
                v1.push(m.size);
            }
        }
        match r.rd_value {
            None => v1.extend_from_slice(&[0; 9]),
            Some(v) => {
                v1.push(1);
                v1.extend_from_slice(&v.to_le_bytes());
            }
        }
    }
    for &o in reference.output() {
        v1.extend_from_slice(&o.to_le_bytes());
    }
    let v1_path = dir.join("fft.htrc");
    fs::write(&v1_path, &v1).unwrap();

    let store = TraceStore::open(&dir).unwrap();
    let migrated = w.stored(&store).unwrap();
    let stats = store.stats();
    assert_eq!(stats.migrated, 1, "v1 file feeds the store: {stats:?}");
    assert_eq!(stats.recorded, 0, "no re-emulation: {stats:?}");
    assert!(!v1_path.exists(), "migration retires the v1 file");
    assert_eq!(migrated.stamp(), reference.stamp());
    let a: Vec<_> = migrated.replay().collect();
    let b: Vec<_> = reference.replay().collect();
    assert_eq!(a, b, "migrated trace replays identically");
    let _ = fs::remove_dir_all(&dir);
}

/// Store-file corruption never goes unnoticed: a sample of truncation
/// lengths and single-bit flips across a real store entry all fail deep
/// verification.
#[test]
fn truncation_and_bit_flips_are_detected_on_store_files() {
    let dir = scratch("corruption");
    let store = TraceStore::open(&dir).unwrap();
    let w = helios::workload("dijkstra").unwrap();
    w.stored(&store).unwrap();
    let path = store.entries().unwrap().pop().unwrap().path;
    let good = fs::read(&path).unwrap();
    codec::verify_file(&path).expect("pristine file verifies");

    // Every 97th truncation length (plus the empty file).
    for len in (0..good.len()).step_by(97) {
        fs::write(&path, &good[..len]).unwrap();
        assert!(
            codec::verify_file(&path).is_err(),
            "truncation to {len}/{} bytes went undetected",
            good.len()
        );
    }
    // A single flipped bit at every 131st byte.
    for i in (0..good.len()).step_by(131) {
        let mut bad = good.clone();
        bad[i] ^= 0x01;
        fs::write(&path, &bad).unwrap();
        assert!(
            codec::verify_file(&path).is_err(),
            "bit flip at byte {i} went undetected"
        );
    }
    fs::write(&path, &good).unwrap();
    codec::verify_file(&path).expect("restored file verifies again");
    let _ = fs::remove_dir_all(&dir);
}

/// Eight threads race `get_or_record` on one cold entry: exactly one
/// records, everyone replays the same bytes.
#[test]
fn concurrent_get_or_record_records_exactly_once() {
    let dir = scratch("race");
    let store = TraceStore::open(&dir).unwrap();
    let w = helios::workload("crc32").unwrap();
    let reference = w.trace().unwrap();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let store = store.clone();
                let w = &w;
                s.spawn(move || w.stored(&store).expect("get_or_record succeeds"))
            })
            .collect();
        for h in handles {
            let t = h.join().unwrap();
            assert_eq!(t.stamp(), reference.stamp());
            assert_eq!(t.len(), reference.len());
        }
    });
    let stats = store.stats();
    assert_eq!(stats.recorded, 1, "exactly one writer: {stats:?}");
    assert_eq!(stats.hits, 7, "everyone else hits: {stats:?}");
    assert_eq!(store.entries().unwrap().len(), 1);
    let _ = fs::remove_dir_all(&dir);
}
